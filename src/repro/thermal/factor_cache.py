"""Per-(grid, package) cache of sparse conductance factorizations.

The conductance matrix of the steady-state thermal system depends only on
the mesh and the package constants — *not* on the power vector.  Every
iteration of the power-thermal fixed point, every design in a ``repro
batch`` sweep over temperatures, and every call in a workload sweep
re-solves the same SPD system with a new right-hand side, so the LU
factorization is computed once per ``(GridSpec, PackageModel)`` key and
only the back-substitution runs per solve (``scipy``'s ``factorized``).

Both key types are frozen dataclasses, making them exact, hashable cache
keys; a changed mesh or package is a different key, so invalidation is
structural.  The cache is process-wide, thread-safe and LRU-bounded.

Effectiveness is observable two ways: the module-level
:func:`factor_cache_stats` counters (always on, used by the kernel
benchmarks), and the ``thermal.factor_cache.{hit,miss}`` counters in
:mod:`repro.obs.metrics` (populated while observability is enabled).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from typing import Any

import numpy as np
from scipy.sparse import csr_matrix

from repro.chip.geometry import GridSpec
from repro.obs import metrics
from repro.thermal.grid import PackageModel

__all__ = [
    "cached_factorization",
    "clear_factor_cache",
    "factor_cache_stats",
]

#: Factorizations kept alive; each holds the SuperLU object of one mesh
#: (a few MB for the default 48x48 mesh), so the bound stays small.
_MAX_ENTRIES = 8

_Solve = Callable[[np.ndarray], np.ndarray]

_lock = threading.Lock()
_cache: OrderedDict[tuple[GridSpec, PackageModel], _Solve] = OrderedDict()
_hits = 0
_misses = 0


def cached_factorization(
    grid: GridSpec,
    package: PackageModel,
    build_matrix: Callable[[], csr_matrix],
) -> tuple[_Solve, bool]:
    """The back-substitution solver for one conductance system.

    Returns ``(solve, hit)`` where ``solve(rhs)`` applies the cached LU
    factors and ``hit`` tells whether the factorization was reused.
    ``build_matrix`` is only called on a miss.
    """
    global _hits, _misses
    key = (grid, package)
    with _lock:
        solve = _cache.get(key)
        if solve is not None:
            _cache.move_to_end(key)
            _hits += 1
            metrics.inc("thermal.factor_cache.hit")
            return solve, True
    # Factor outside the lock: assembly + LU can take milliseconds and
    # other meshes' lookups should not wait on it.
    from scipy.sparse.linalg import factorized

    solve = factorized(build_matrix().tocsc())
    with _lock:
        _misses += 1
        metrics.inc("thermal.factor_cache.miss")
        _cache[key] = solve
        _cache.move_to_end(key)
        while len(_cache) > _MAX_ENTRIES:
            _cache.popitem(last=False)
    return solve, False


def factor_cache_stats() -> dict[str, Any]:
    """Lifetime hit/miss counts and current entry count."""
    with _lock:
        return {"hits": _hits, "misses": _misses, "entries": len(_cache)}


def clear_factor_cache(reset_stats: bool = True) -> None:
    """Drop every cached factorization (tests, memory pressure)."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        if reset_stats:
            _hits = 0
            _misses = 0
