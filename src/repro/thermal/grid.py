"""Thermal mesh and package parameters for the steady-state solver.

A light-weight substitute for HotSpot [10]: the die is meshed with a
regular grid; every cell conducts laterally through the silicon to its four
neighbours and vertically through a lumped package resistance to ambient.
That single-layer model is enough to reproduce the thermal-profile *class*
the reliability analysis consumes — global unevenness with local uniformity
and a ~30 degC hot-spot/inactive-region contrast (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PackageModel:
    """Material and package constants of the thermal model.

    Parameters
    ----------
    silicon_conductivity:
        Thermal conductivity of silicon, W/(mm K). 0.13-0.15 at operating
        temperature.
    die_thickness:
        Die thickness in mm (the lateral conduction cross-section).
    package_resistance:
        Area-specific junction-to-ambient resistance, K mm^2 / W. For a
        256 mm^2 die, 100 K mm^2/W corresponds to ~0.4 K/W total — a
        high-performance heatsink.
    ambient_temperature:
        Ambient (heatsink inlet) temperature in celsius.
    """

    silicon_conductivity: float = 0.15
    die_thickness: float = 0.5
    package_resistance: float = 100.0
    ambient_temperature: float = 45.0

    def __post_init__(self) -> None:
        if self.silicon_conductivity <= 0.0:
            raise ConfigurationError("silicon conductivity must be positive")
        if self.die_thickness <= 0.0:
            raise ConfigurationError("die thickness must be positive")
        if self.package_resistance <= 0.0:
            raise ConfigurationError("package resistance must be positive")

    def lateral_conductance(self, grid: GridSpec) -> tuple[float, float]:
        """Cell-to-cell conductances ``(G_x, G_y)`` in W/K.

        ``G_x`` couples horizontal neighbours (conduction across the cell
        width through a ``cell_height x die_thickness`` cross-section).
        """
        g_x = (
            self.silicon_conductivity
            * self.die_thickness
            * grid.cell_height
            / grid.cell_width
        )
        g_y = (
            self.silicon_conductivity
            * self.die_thickness
            * grid.cell_width
            / grid.cell_height
        )
        return g_x, g_y

    def vertical_conductance(self, grid: GridSpec) -> float:
        """Per-cell conductance to ambient in W/K."""
        cell_area = grid.cell_width * grid.cell_height
        return cell_area / self.package_resistance

    def spreading_length(self) -> float:
        """Characteristic lateral heat-spreading length in mm.

        ``sqrt(k * t_die * r_package)`` — hot spots smaller than this blur
        into their surroundings; block-level features larger than it stay
        visible in the temperature map.
        """
        return (
            self.silicon_conductivity
            * self.die_thickness
            * self.package_resistance
        ) ** 0.5
