"""HotSpotLite: floorplan-level thermal analysis facade.

Maps per-block powers onto the thermal mesh, runs the steady-state solver,
and reports per-block average temperatures — the exact interface the
reliability analysis needs ("HotSpot [10] to achieve the temperature
profile of the design", Sec. V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip.floorplan import Floorplan
from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError
from repro.obs.trace import span
from repro.thermal.grid import PackageModel
from repro.thermal.solver import TemperatureField, solve_steady_state


@dataclass(frozen=True)
class ThermalResult:
    """Output of a floorplan thermal analysis.

    Attributes
    ----------
    field:
        The solved cell-level temperature map.
    block_temperatures:
        Area-averaged temperature of each block (celsius), floorplan order.
    """

    field: TemperatureField
    block_temperatures: np.ndarray

    @property
    def hottest_block_temperature(self) -> float:
        """Worst-case block temperature — what a guard-band flow assumes
        for the entire chip."""
        return float(self.block_temperatures.max())

    @property
    def block_spread(self) -> float:
        """Hot-spot minus inactive-region block temperature (Fig. 1 shows
        ~30 degC on real designs)."""
        return float(self.block_temperatures.max() - self.block_temperatures.min())

    def block_temperature_map(self, floorplan: Floorplan) -> dict[str, float]:
        """Block temperatures keyed by block name."""
        if floorplan.n_blocks != self.block_temperatures.size:
            raise ConfigurationError("floorplan does not match this result")
        return dict(
            zip(floorplan.block_names, self.block_temperatures.tolist(), strict=True)
        )


class HotSpotLite:
    """Steady-state floorplan thermal analyzer.

    Parameters
    ----------
    package:
        Package and material constants.
    mesh_resolution:
        Cells along the longer die edge; the mesh aspect follows the die.
    """

    def __init__(
        self,
        package: PackageModel | None = None,
        mesh_resolution: int = 48,
    ) -> None:
        if mesh_resolution < 4:
            raise ConfigurationError(
                f"mesh resolution must be >= 4, got {mesh_resolution}"
            )
        self.package = package if package is not None else PackageModel()
        self.mesh_resolution = mesh_resolution

    def mesh_for(self, floorplan: Floorplan) -> GridSpec:
        """The thermal mesh used for a given die."""
        longer = max(floorplan.width, floorplan.height)
        nx = max(4, round(self.mesh_resolution * floorplan.width / longer))
        ny = max(4, round(self.mesh_resolution * floorplan.height / longer))
        return GridSpec(nx=nx, ny=ny, width=floorplan.width, height=floorplan.height)

    def cell_powers(self, floorplan: Floorplan, mesh: GridSpec) -> np.ndarray:
        """Distribute block powers onto mesh cells by overlap area."""
        powers = np.zeros(mesh.n_cells)
        for block in floorplan.blocks:
            fractions = mesh.overlap_fractions(block.rect)
            total = fractions.sum()
            if total <= 0.0:
                raise ConfigurationError(
                    f"block {block.name!r} does not overlap the thermal mesh"
                )
            powers += block.power * fractions / total
        return powers

    def analyze(self, floorplan: Floorplan) -> ThermalResult:
        """Solve the steady-state profile and per-block temperatures."""
        with span(
            "thermal.hotspot",
            blocks=floorplan.n_blocks,
            power_w=round(floorplan.total_power, 3),
        ):
            mesh = self.mesh_for(floorplan)
            cell_power = self.cell_powers(floorplan, mesh)
            field = solve_steady_state(mesh, cell_power, self.package)
            block_temps = np.array(
                [
                    field.average_over(mesh.overlap_fractions(block.rect))
                    for block in floorplan.blocks
                ]
            )
        return ThermalResult(field=field, block_temperatures=block_temps)


def uniform_temperature_result(
    floorplan: Floorplan, temperature: float, mesh_resolution: int = 8
) -> ThermalResult:
    """A degenerate thermal result with every block at one temperature.

    Used by the temperature-unaware baseline, which assumes the worst-case
    temperature across the whole chip.
    """
    mesh = GridSpec(
        nx=mesh_resolution,
        ny=mesh_resolution,
        width=floorplan.width,
        height=floorplan.height,
    )
    field = TemperatureField(
        grid=mesh, values=np.full(mesh.n_cells, float(temperature))
    )
    return ThermalResult(
        field=field,
        block_temperatures=np.full(floorplan.n_blocks, float(temperature)),
    )
