"""Sparse steady-state solver for the thermal grid.

Solves the per-cell energy balance

    sum_neighbours G_lat (T_nb - T_i) + G_v (T_amb - T_i) + P_i = 0

as one sparse SPD linear system. Die edges are adiabatic laterally (heat
leaves only through the package), the standard HotSpot assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import spsolve

from repro.chip.geometry import GridSpec
from repro.errors import SolverError
from repro.obs import metrics
from repro.obs.trace import span
from repro.thermal.grid import PackageModel


@dataclass(frozen=True)
class TemperatureField:
    """A solved temperature map on a thermal grid (values in celsius)."""

    grid: GridSpec
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.shape != (self.grid.n_cells,):
            raise SolverError(
                f"expected {self.grid.n_cells} cell temperatures, "
                f"got shape {values.shape}"
            )
        object.__setattr__(self, "values", values)

    @property
    def max(self) -> float:
        """Hottest cell temperature."""
        return float(self.values.max())

    @property
    def min(self) -> float:
        """Coolest cell temperature."""
        return float(self.values.min())

    @property
    def spread(self) -> float:
        """Across-die temperature spread (hot spot minus coolest region)."""
        return self.max - self.min

    def as_image(self) -> np.ndarray:
        """The field as an ``(ny, nx)`` image for plotting."""
        return self.grid.field_to_image(self.values)

    def average_over(self, fractions: np.ndarray) -> float:
        """Area-weighted average temperature for a region.

        ``fractions`` is the per-cell overlap-fraction vector of the region
        (e.g. from :meth:`GridSpec.overlap_fractions`); it is renormalized
        internally.
        """
        fractions = np.asarray(fractions, dtype=float)
        total = fractions.sum()
        if total <= 0.0:
            raise SolverError("region does not overlap the thermal grid")
        return float(self.values @ fractions / total)


def _build_conductance_matrix(
    grid: GridSpec, package: PackageModel
) -> csr_matrix:
    """Assemble the sparse conductance (stiffness) matrix."""
    g_x, g_y = package.lateral_conductance(grid)
    g_v = package.vertical_conductance(grid)
    nx, ny = grid.nx, grid.ny
    n = grid.n_cells

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    diag = np.full(n, g_v)

    def couple(i: int, j: int, g: float) -> None:
        rows.extend((i, j))
        cols.extend((j, i))
        vals.extend((-g, -g))
        diag[i] += g
        diag[j] += g

    for row in range(ny):
        for col in range(nx):
            index = row * nx + col
            if col + 1 < nx:
                couple(index, index + 1, g_x)
            if row + 1 < ny:
                couple(index, index + nx, g_y)

    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    return csr_matrix((vals, (rows, cols)), shape=(n, n))


def solve_steady_state(
    grid: GridSpec,
    cell_power: np.ndarray,
    package: PackageModel,
) -> TemperatureField:
    """Solve for the steady-state temperature of every grid cell.

    Parameters
    ----------
    grid:
        Thermal mesh.
    cell_power:
        Power injected into each cell in watts (flat, row-major).
    package:
        Material/package constants.
    """
    cell_power = np.asarray(cell_power, dtype=float)
    if cell_power.shape != (grid.n_cells,):
        raise SolverError(
            f"expected {grid.n_cells} cell powers, got shape {cell_power.shape}"
        )
    if np.any(cell_power < 0.0):
        raise SolverError("cell powers must be non-negative")
    with span("thermal.solve", cells=grid.n_cells):
        matrix = _build_conductance_matrix(grid, package)
        g_v = package.vertical_conductance(grid)
        rhs = cell_power + g_v * package.ambient_temperature
        temperatures = spsolve(matrix, rhs)
        metrics.inc("thermal.solves")
    if not np.all(np.isfinite(temperatures)):
        raise SolverError("thermal solve produced non-finite temperatures")
    return TemperatureField(grid=grid, values=np.asarray(temperatures))
