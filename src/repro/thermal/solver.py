"""Sparse steady-state solver for the thermal grid.

Solves the per-cell energy balance

    sum_neighbours G_lat (T_nb - T_i) + G_v (T_amb - T_i) + P_i = 0

as one sparse SPD linear system. Die edges are adiabatic laterally (heat
leaves only through the package), the standard HotSpot assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import spsolve

from repro.chip.geometry import GridSpec
from repro.errors import SolverError
from repro.kernels.config import fast_paths_enabled
from repro.obs import metrics
from repro.obs.trace import span
from repro.thermal.factor_cache import cached_factorization
from repro.thermal.grid import PackageModel


@dataclass(frozen=True)
class TemperatureField:
    """A solved temperature map on a thermal grid (values in celsius)."""

    grid: GridSpec
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.shape != (self.grid.n_cells,):
            raise SolverError(
                f"expected {self.grid.n_cells} cell temperatures, "
                f"got shape {values.shape}"
            )
        object.__setattr__(self, "values", values)

    @property
    def max(self) -> float:
        """Hottest cell temperature."""
        return float(self.values.max())

    @property
    def min(self) -> float:
        """Coolest cell temperature."""
        return float(self.values.min())

    @property
    def spread(self) -> float:
        """Across-die temperature spread (hot spot minus coolest region)."""
        return self.max - self.min

    def as_image(self) -> np.ndarray:
        """The field as an ``(ny, nx)`` image for plotting."""
        return self.grid.field_to_image(self.values)

    def average_over(self, fractions: np.ndarray) -> float:
        """Area-weighted average temperature for a region.

        ``fractions`` is the per-cell overlap-fraction vector of the region
        (e.g. from :meth:`GridSpec.overlap_fractions`); it is renormalized
        internally.
        """
        fractions = np.asarray(fractions, dtype=float)
        total = fractions.sum()
        if total <= 0.0:
            raise SolverError("region does not overlap the thermal grid")
        return float(self.values @ fractions / total)


def _build_conductance_matrix(
    grid: GridSpec, package: PackageModel
) -> csr_matrix:
    """Assemble the sparse conductance (stiffness) matrix.

    Pure numpy index arithmetic: horizontal/vertical neighbour pairs come
    from slicing the row-major index grid, off-diagonals are emitted for
    both coupling directions, and the diagonal accumulates each cell's
    neighbour count via ``bincount`` — no per-cell Python loop.
    """
    g_x, g_y = package.lateral_conductance(grid)
    g_v = package.vertical_conductance(grid)
    nx, ny = grid.nx, grid.ny
    n = grid.n_cells

    index = np.arange(n).reshape(ny, nx)
    left = index[:, :-1].ravel()  # couples to the right neighbour (+1)
    below = index[:-1, :].ravel()  # couples to the upper neighbour (+nx)

    rows = np.concatenate([left, left + 1, below, below + nx])
    cols = np.concatenate([left + 1, left, below + nx, below])
    vals = np.concatenate(
        [
            np.full(2 * left.size, -g_x),
            np.full(2 * below.size, -g_y),
        ]
    )

    x_degree = np.bincount(np.concatenate([left, left + 1]), minlength=n)
    y_degree = np.bincount(np.concatenate([below, below + nx]), minlength=n)
    diag = g_v + g_x * x_degree + g_y * y_degree

    rows = np.concatenate([rows, np.arange(n)])
    cols = np.concatenate([cols, np.arange(n)])
    vals = np.concatenate([vals, diag])
    return csr_matrix((vals, (rows, cols)), shape=(n, n))


def _build_conductance_matrix_reference(
    grid: GridSpec, package: PackageModel
) -> csr_matrix:
    """Per-cell-loop assembly (pre-fast-path reference implementation).

    Kept for the kernel equivalence tests and benchmarks; the vectorized
    builder must stay numerically interchangeable with this one.
    """
    g_x, g_y = package.lateral_conductance(grid)
    g_v = package.vertical_conductance(grid)
    nx, ny = grid.nx, grid.ny
    n = grid.n_cells

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    diag = np.full(n, g_v)

    def couple(i: int, j: int, g: float) -> None:
        rows.extend((i, j))
        cols.extend((j, i))
        vals.extend((-g, -g))
        diag[i] += g
        diag[j] += g

    for row in range(ny):
        for col in range(nx):
            index = row * nx + col
            if col + 1 < nx:
                couple(index, index + 1, g_x)
            if row + 1 < ny:
                couple(index, index + nx, g_y)

    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    return csr_matrix((vals, (rows, cols)), shape=(n, n))


def solve_steady_state(
    grid: GridSpec,
    cell_power: np.ndarray,
    package: PackageModel,
) -> TemperatureField:
    """Solve for the steady-state temperature of every grid cell.

    Parameters
    ----------
    grid:
        Thermal mesh.
    cell_power:
        Power injected into each cell in watts (flat, row-major).
    package:
        Material/package constants.
    """
    cell_power = np.asarray(cell_power, dtype=float)
    if cell_power.shape != (grid.n_cells,):
        raise SolverError(
            f"expected {grid.n_cells} cell powers, got shape {cell_power.shape}"
        )
    if np.any(cell_power < 0.0):
        raise SolverError("cell powers must be non-negative")
    with span("thermal.solve", cells=grid.n_cells) as solve_span:
        g_v = package.vertical_conductance(grid)
        rhs = cell_power + g_v * package.ambient_temperature
        if fast_paths_enabled():
            # Factor the SPD conductance system once per (grid, package)
            # and reuse the back-substitution: every iteration of the
            # power-thermal fixed point and every design of a sweep hits
            # the same key.
            solve, hit = cached_factorization(
                grid, package, lambda: _build_conductance_matrix(grid, package)
            )
            temperatures = solve(rhs)
            solve_span.set(factor_cache="hit" if hit else "miss")
        else:
            matrix = _build_conductance_matrix_reference(grid, package)
            temperatures = spsolve(matrix, rhs)
        metrics.inc("thermal.solves")
    if not np.all(np.isfinite(temperatures)):
        raise SolverError("thermal solve produced non-finite temperatures")
    return TemperatureField(grid=grid, values=np.asarray(temperatures))
