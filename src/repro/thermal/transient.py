"""Transient thermal simulation (implicit-Euler time stepping).

Complements the steady-state solver: workloads change on millisecond-to-
second scales, and reliability management wants the temperature *history*
a power schedule produces. The per-cell heat capacity turns the
steady-state conductance system into

    C dT/dt = -G T + P(t) + G_v T_amb

integrated here with unconditionally stable backward Euler. Because the
thermal time constants (milliseconds) are tiny compared to OBD time scales
(years), the mission-profile analysis consumes the per-phase *steady
states*; the transient solver exists to verify that separation (phases
reach steady state quickly) and to study short thermal transients.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix, identity
from scipy.sparse.linalg import factorized

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError, SolverError
from repro.thermal.grid import PackageModel
from repro.thermal.solver import TemperatureField, _build_conductance_matrix

#: Volumetric heat capacity of silicon, J/(mm^3 K).
SILICON_HEAT_CAPACITY = 1.63e-3


@dataclass(frozen=True)
class TransientResult:
    """A transient thermal trace.

    Attributes
    ----------
    times:
        Sample times in seconds (including t = 0).
    fields:
        ``(n_times, n_cells)`` cell temperatures in celsius.
    grid:
        The thermal mesh.
    """

    times: np.ndarray
    fields: np.ndarray
    grid: GridSpec

    def field_at(self, index: int) -> TemperatureField:
        """The temperature field at one time sample."""
        return TemperatureField(grid=self.grid, values=self.fields[index])

    def cell_trace(self, cell: int) -> np.ndarray:
        """Temperature history of one cell."""
        return self.fields[:, cell]

    def max_trace(self) -> np.ndarray:
        """Hottest-cell temperature at each sample."""
        return self.fields.max(axis=1)

    def settled(self, tolerance: float = 0.1) -> bool:
        """Whether the trace has reached steady state (last step moves
        less than ``tolerance`` celsius anywhere)."""
        if len(self.times) < 2:
            return False
        return bool(
            np.max(np.abs(self.fields[-1] - self.fields[-2])) < tolerance
        )


class TransientSolver:
    """Backward-Euler transient integrator on the thermal mesh.

    Parameters
    ----------
    grid:
        Thermal mesh.
    package:
        Material/package constants (shared with the steady-state solver).
    heat_capacity:
        Volumetric heat capacity in J/(mm^3 K).
    """

    def __init__(
        self,
        grid: GridSpec,
        package: PackageModel | None = None,
        heat_capacity: float = SILICON_HEAT_CAPACITY,
    ) -> None:
        if heat_capacity <= 0.0:
            raise ConfigurationError("heat capacity must be positive")
        self.grid = grid
        self.package = package if package is not None else PackageModel()
        cell_volume = (
            grid.cell_width * grid.cell_height * self.package.die_thickness
        )
        self.cell_capacity = heat_capacity * cell_volume
        self.conductance = _build_conductance_matrix(grid, self.package)
        self._solver_cache: dict[float, Callable[[np.ndarray], np.ndarray]] = {}

    @property
    def time_constant(self) -> float:
        """Fastest thermal time constant in seconds.

        The lumped per-cell RC: capacity over total cell conductance — a
        lower bound on any mode; use it to choose ``dt``.
        """
        g_total = self.conductance.diagonal().mean()
        return float(self.cell_capacity / g_total)

    @property
    def slowest_time_constant(self) -> float:
        """Slowest thermal time constant in seconds.

        The uniform (die-average) mode sees only the vertical package
        path: ``tau = C_cell / G_v`` — use it to choose the settling
        duration.
        """
        g_v = self.package.vertical_conductance(self.grid)
        return float(self.cell_capacity / g_v)

    def _step_solver(self, dt: float) -> Callable[[np.ndarray], np.ndarray]:
        solver = self._solver_cache.get(dt)
        if solver is None:
            n = self.grid.n_cells
            system = (
                identity(n, format="csr") * (self.cell_capacity / dt)
                + self.conductance
            )
            solver = factorized(csr_matrix(system).tocsc())
            self._solver_cache[dt] = solver
        return solver

    def simulate(
        self,
        cell_power: np.ndarray | None,
        duration: float,
        dt: float,
        initial: np.ndarray | float | None = None,
        power_schedule: Callable[[float], np.ndarray] | None = None,
    ) -> TransientResult:
        """Integrate the thermal state over ``duration`` seconds.

        Parameters
        ----------
        cell_power:
            Constant per-cell power (W); ignored when ``power_schedule``
            is given.
        duration, dt:
            Total time and step size in seconds.
        initial:
            Initial temperature field (celsius): an array, a scalar, or
            ``None`` for ambient.
        power_schedule:
            Optional callable ``t -> (n_cells,) watts`` evaluated at the
            *end* of each step (backward Euler).
        """
        if duration <= 0.0 or dt <= 0.0:
            raise ConfigurationError("duration and dt must be positive")
        if dt > duration:
            raise ConfigurationError("dt must not exceed the duration")
        n = self.grid.n_cells
        if initial is None:
            state = np.full(n, self.package.ambient_temperature)
        else:
            initial_arr = np.asarray(initial, dtype=float)
            state = (
                np.full(n, float(initial_arr))
                if initial_arr.ndim == 0
                else initial_arr.copy()
            )
            if state.shape != (n,):
                raise SolverError(
                    f"initial field must have {n} cells, got {state.shape}"
                )
        if power_schedule is None:
            if cell_power is None:
                raise ConfigurationError(
                    "provide cell_power or a power_schedule"
                )
            cell_power = np.asarray(cell_power, dtype=float)
            if cell_power.shape != (n,):
                raise SolverError(
                    f"cell power must have {n} entries, got {cell_power.shape}"
                )
            power_schedule = lambda _t: cell_power  # noqa: E731

        g_v = self.package.vertical_conductance(self.grid)
        ambient_term = g_v * self.package.ambient_temperature
        solve = self._step_solver(dt)
        n_steps = int(np.ceil(duration / dt))
        times = [0.0]
        fields = [state.copy()]
        t = 0.0
        for _ in range(n_steps):
            t += dt
            power = np.asarray(power_schedule(t), dtype=float)
            if power.shape != (n,):
                raise SolverError("power schedule returned a wrong shape")
            rhs = (self.cell_capacity / dt) * state + power + ambient_term
            state = solve(rhs)
            times.append(t)
            fields.append(state.copy())
        return TransientResult(
            times=np.asarray(times),
            fields=np.asarray(fields),
            grid=self.grid,
        )

    def steady_state(self, cell_power: np.ndarray) -> TemperatureField:
        """The t -> infinity solution (delegates to the static solver)."""
        from repro.thermal.solver import solve_steady_state

        return solve_steady_state(self.grid, cell_power, self.package)
