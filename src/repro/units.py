"""Physical constants and unit conventions used across the library.

Conventions
-----------
- Oxide thickness: nanometres (nm).
- Temperature: kelvin inside models; helpers convert from/to celsius because
  the paper quotes block temperatures in celsius.
- Time: hours. Weibull scale parameters are therefore in hours.
- Device area: normalized to the minimum device area (the ``a`` of the
  Weibull model, eq. (3) of the paper), i.e. dimensionless.
- Chip geometry: millimetres.
- Power: watts.
"""

from __future__ import annotations

import math

from repro.errors import UnitError

#: Boltzmann constant in eV/K (used in Arrhenius-type acceleration models).
BOLTZMANN_EV = 8.617333262e-5

#: Offset between the celsius and kelvin scales.
CELSIUS_OFFSET = 273.15

#: Hours in a year (365.25 days), for human-readable lifetime reporting.
HOURS_PER_YEAR = 24.0 * 365.25

#: Absolute zero expressed in celsius; temperatures below this are invalid.
ABSOLUTE_ZERO_CELSIUS = -CELSIUS_OFFSET


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from celsius to kelvin.

    Raises
    ------
    UnitError
        If the temperature is below absolute zero or not finite.  (A
        :class:`ValueError` subclass, so legacy callers keep working.)
    """
    if not math.isfinite(temp_c):
        raise UnitError(f"temperature must be finite, got {temp_c!r}")
    if temp_c < ABSOLUTE_ZERO_CELSIUS:
        raise UnitError(f"temperature {temp_c} degC is below absolute zero")
    return temp_c + CELSIUS_OFFSET


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to celsius.

    Raises
    ------
    UnitError
        If the temperature is negative or not finite.  (A
        :class:`ValueError` subclass, so legacy callers keep working.)
    """
    if not math.isfinite(temp_k):
        raise UnitError(f"temperature must be finite, got {temp_k!r}")
    if temp_k < 0.0:
        raise UnitError(f"temperature {temp_k} K is below absolute zero")
    return temp_k - CELSIUS_OFFSET


def celsius(value: float) -> float:
    """Declare a temperature constant in celsius.

    The unit-declaration helper mechanism plugins use for their stress
    parameters (reprolint RPL014 requires it): validates the value is a
    physical temperature and returns it unchanged, so the declaration
    carries its unit at the definition site.

    Raises
    ------
    UnitError
        If the value is not finite or below absolute zero.
    """
    celsius_to_kelvin(value)
    return float(value)


def kelvin(value: float) -> float:
    """Declare a temperature constant in kelvin (validated, returned as-is).

    Raises
    ------
    UnitError
        If the value is not finite or negative.
    """
    kelvin_to_celsius(value)
    return float(value)


def volts(value: float) -> float:
    """Declare a voltage constant in volts (validated, returned as-is).

    Raises
    ------
    UnitError
        If the value is not finite or non-positive.
    """
    if not math.isfinite(value) or value <= 0.0:
        raise UnitError(f"voltage must be finite and positive, got {value!r}")
    return float(value)


def electron_volts(value: float) -> float:
    """Declare an energy constant in eV (validated, returned as-is).

    Raises
    ------
    UnitError
        If the value is not finite or non-positive.
    """
    if not math.isfinite(value) or value <= 0.0:
        raise UnitError(f"energy must be finite and positive, got {value!r}")
    return float(value)


def hours_to_years(hours: float) -> float:
    """Convert a duration in hours to years (365.25-day years)."""
    return hours / HOURS_PER_YEAR


def years_to_hours(years: float) -> float:
    """Convert a duration in years (365.25-day years) to hours."""
    return years * HOURS_PER_YEAR
