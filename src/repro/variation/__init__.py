"""Oxide-thickness variation modeling: budgets, correlation, PCA, sampling."""
