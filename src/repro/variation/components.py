"""Oxide-thickness variation budget (eq. (1) and Table II of the paper).

Thickness of any device decomposes as

    x = u0 + z_g + z_corr + z_eps

with ``z_g`` the inter-die (global) component, ``z_corr`` the spatially
correlated intra-die component and ``z_eps`` the independent residual. The
paper's experimental setup (Table II) puts the total 3-sigma at 4 % of the
2.2 nm nominal and splits the variance 50/25/25 between the three
components.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Tolerance when checking that the variance fractions sum to one.
_FRACTION_TOL = 1e-9


@dataclass(frozen=True)
class VariationBudget:
    """Total thickness-variation magnitude and its split across components.

    Parameters
    ----------
    nominal_thickness:
        Nominal oxide thickness ``u0`` in nm.
    three_sigma_ratio:
        Total variation expressed as ``3 * sigma_total / u0``.
    global_fraction, spatial_fraction, independent_fraction:
        Fractions of the total *variance* assigned to the inter-die,
        spatially correlated intra-die, and independent components. Must be
        non-negative and sum to 1.
    """

    nominal_thickness: float = 2.2
    three_sigma_ratio: float = 0.04
    global_fraction: float = 0.50
    spatial_fraction: float = 0.25
    independent_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.nominal_thickness <= 0.0:
            raise ConfigurationError(
                f"nominal thickness must be positive, got {self.nominal_thickness}"
            )
        if self.three_sigma_ratio <= 0.0:
            raise ConfigurationError(
                f"3-sigma ratio must be positive, got {self.three_sigma_ratio}"
            )
        fractions = (
            self.global_fraction,
            self.spatial_fraction,
            self.independent_fraction,
        )
        if any(f < 0.0 for f in fractions):
            raise ConfigurationError(f"variance fractions must be >= 0, got {fractions}")
        if abs(sum(fractions) - 1.0) > _FRACTION_TOL:
            raise ConfigurationError(
                f"variance fractions must sum to 1, got {sum(fractions)}"
            )

    @classmethod
    def table2(cls) -> "VariationBudget":
        """The exact parameter set of Table II of the paper."""
        return cls(
            nominal_thickness=2.2,
            three_sigma_ratio=0.04,
            global_fraction=0.50,
            spatial_fraction=0.25,
            independent_fraction=0.25,
        )

    @property
    def sigma_total(self) -> float:
        """Total thickness standard deviation in nm."""
        return self.three_sigma_ratio * self.nominal_thickness / 3.0

    @property
    def variance_total(self) -> float:
        """Total thickness variance in nm^2."""
        return self.sigma_total**2

    @property
    def sigma_global(self) -> float:
        """Standard deviation of the inter-die component in nm."""
        return math.sqrt(self.global_fraction) * self.sigma_total

    @property
    def sigma_spatial(self) -> float:
        """Standard deviation of the spatially correlated component in nm."""
        return math.sqrt(self.spatial_fraction) * self.sigma_total

    @property
    def sigma_independent(self) -> float:
        """Standard deviation of the independent residual in nm."""
        return math.sqrt(self.independent_fraction) * self.sigma_total

    @property
    def minimum_thickness(self) -> float:
        """Worst-case (guard-band) thickness: nominal minus 3 sigma.

        This is the uniform ``x_min`` the traditional guard-band method
        assumes for every device on every chip (eq. (33) of the paper).
        """
        return self.nominal_thickness - 3.0 * self.sigma_total

    def scaled(self, factor: float) -> "VariationBudget":
        """A budget with the total variation magnitude scaled by ``factor``.

        The component split is preserved; only ``three_sigma_ratio``
        changes. Useful for sensitivity studies.
        """
        if factor <= 0.0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return VariationBudget(
            nominal_thickness=self.nominal_thickness,
            three_sigma_ratio=self.three_sigma_ratio * factor,
            global_fraction=self.global_fraction,
            spatial_fraction=self.spatial_fraction,
            independent_fraction=self.independent_fraction,
        )
