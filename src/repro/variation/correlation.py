"""Grid-based spatial correlation of oxide thickness (Sec. II, Fig. 2).

The spatially correlated intra-die component is modeled with one random
variable per grid cell plus an ``n x n`` covariance matrix. Real silicon
correlation data was unavailable to the paper's authors too, so — exactly as
the paper does — the covariance is derived from a monotonically decaying
function of cell-centre distance (an exponential kernel by default, after
Liu [38]), with the correlation distance ``rho_dist`` expressed relative to
the chip dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError, NumericalError
from repro.kernels.artifacts import memoize_artifact
from repro.obs.trace import span


def exponential_kernel(distance: np.ndarray, corr_length: float) -> np.ndarray:
    """Exponentially decaying correlation: ``exp(-d / L)``."""
    if corr_length <= 0.0:
        raise ConfigurationError(f"correlation length must be positive, got {corr_length}")
    return np.exp(-np.asarray(distance, dtype=float) / corr_length)


def gaussian_kernel(distance: np.ndarray, corr_length: float) -> np.ndarray:
    """Squared-exponential correlation: ``exp(-(d / L)^2)``."""
    if corr_length <= 0.0:
        raise ConfigurationError(f"correlation length must be positive, got {corr_length}")
    scaled = np.asarray(distance, dtype=float) / corr_length
    return np.exp(-(scaled**2))


def linear_kernel(distance: np.ndarray, corr_length: float) -> np.ndarray:
    """Linearly decaying correlation, clipped at zero: ``max(1 - d/L, 0)``.

    Note: the raw linear kernel is not positive semidefinite in 2-D; use
    :func:`nearest_correlation_matrix` afterwards (done automatically by
    :class:`SpatialCorrelationModel`).
    """
    if corr_length <= 0.0:
        raise ConfigurationError(f"correlation length must be positive, got {corr_length}")
    return np.maximum(1.0 - np.asarray(distance, dtype=float) / corr_length, 0.0)


_KERNELS = {
    "exponential": exponential_kernel,
    "gaussian": gaussian_kernel,
    "linear": linear_kernel,
}


def nearest_correlation_matrix(matrix: np.ndarray, min_eig: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the positive-semidefinite cone.

    Eigenvalues below ``min_eig`` are clipped and the unit diagonal is
    restored, a light-weight version of Higham's nearest-correlation-matrix
    algorithm that is adequate for the smooth kernels used here (they are
    PSD up to round-off; clipping only repairs numerical noise, or the
    intentionally indefinite linear kernel).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(f"expected a square matrix, got shape {matrix.shape}")
    sym = 0.5 * (matrix + matrix.T)
    eigvals, eigvecs = np.linalg.eigh(sym)
    if eigvals.min() >= min_eig:
        return sym
    clipped = np.clip(eigvals, min_eig, None)
    repaired = (eigvecs * clipped) @ eigvecs.T
    # Restore the unit diagonal (correlation matrices only).
    diag = np.sqrt(np.clip(np.diag(repaired), 1e-300, None))
    repaired = repaired / np.outer(diag, diag)
    np.fill_diagonal(repaired, 1.0)
    return repaired


@dataclass(frozen=True)
class SpatialCorrelationModel:
    """Correlation structure of the spatial thickness component on a grid.

    Parameters
    ----------
    grid:
        The spatial-correlation grid partitioning the die (Fig. 2).
    rho_dist:
        Correlation distance *relative to the chip dimension* (the paper
        normalises w.r.t. chip size and evaluates 0.25 / 0.5 / 0.75 in
        Table IV). The absolute correlation length is
        ``rho_dist * grid.diagonal``.
    kernel:
        One of ``"exponential"`` (paper default), ``"gaussian"``,
        ``"linear"``.
    """

    grid: GridSpec
    rho_dist: float = 0.5
    kernel: str = "exponential"

    def __post_init__(self) -> None:
        if self.rho_dist <= 0.0:
            raise ConfigurationError(f"rho_dist must be positive, got {self.rho_dist}")
        if self.kernel not in _KERNELS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of {sorted(_KERNELS)}"
            )

    @property
    def correlation_length(self) -> float:
        """Absolute correlation length in the grid's units (mm)."""
        return self.rho_dist * self.grid.diagonal

    def correlation_matrix(self) -> np.ndarray:
        """The ``n x n`` grid-cell correlation matrix (unit diagonal, PSD)."""
        with span(
            "pca.correlation_matrix",
            cells=self.grid.n_cells,
            kernel=self.kernel,
        ):
            # The PSD projection inside needs an eigendecomposition as
            # expensive as the PCA itself, so the finished matrix is
            # memoized across processes.  GridSpec is a frozen value
            # type, so its fields plus the kernel knobs key the result
            # exactly.
            arrays = memoize_artifact(
                "correlation_matrix",
                {
                    "nx": self.grid.nx,
                    "ny": self.grid.ny,
                    "width": self.grid.width,
                    "height": self.grid.height,
                    "rho_dist": self.rho_dist,
                    "kernel": self.kernel,
                },
                lambda: {"correlation": self._compute_correlation_matrix()},
                required=("correlation",),
            )
            return np.asarray(arrays["correlation"])

    def _compute_correlation_matrix(self) -> np.ndarray:
        distances = self.grid.pairwise_center_distances()
        kernel_fn = _KERNELS[self.kernel]
        corr = kernel_fn(distances, self.correlation_length)
        np.fill_diagonal(corr, 1.0)
        return nearest_correlation_matrix(corr)

    def covariance_matrix(self, sigma_spatial: float) -> np.ndarray:
        """Covariance of the spatial component across grid cells.

        ``sigma_spatial`` is the per-device standard deviation of the
        spatially correlated component (same for every cell).
        """
        if sigma_spatial < 0.0:
            raise ConfigurationError(
                f"sigma_spatial must be non-negative, got {sigma_spatial}"
            )
        return (sigma_spatial**2) * self.correlation_matrix()

    def correlation_between(self, cell_a: int, cell_b: int) -> float:
        """Correlation coefficient between two grid cells by index."""
        centers = self.grid.cell_centers()
        distance = float(np.linalg.norm(centers[cell_a] - centers[cell_b]))
        kernel_fn = _KERNELS[self.kernel]
        return float(kernel_fn(np.array(distance), self.correlation_length))


def cholesky_factor(covariance: np.ndarray, jitter: float = 1e-12) -> np.ndarray:
    """A (possibly jittered) Cholesky factor of a covariance matrix.

    Falls back to an eigendecomposition square root when the matrix is
    positive semidefinite but rank deficient.
    """
    covariance = np.asarray(covariance, dtype=float)
    scale = max(float(np.trace(covariance)) / max(len(covariance), 1), 1e-300)
    for attempt in range(4):
        bumped = covariance + (jitter * scale * 10.0**attempt) * np.eye(len(covariance))
        try:
            return np.linalg.cholesky(bumped)
        except np.linalg.LinAlgError:
            continue
    eigvals, eigvecs = np.linalg.eigh(0.5 * (covariance + covariance.T))
    if eigvals.min() < -1e-6 * scale:
        raise NumericalError("covariance matrix is not positive semidefinite")
    return eigvecs * np.sqrt(np.clip(eigvals, 0.0, None))
