"""Extraction of the variation model from silicon measurements (ref [20]).

The paper notes the grid covariance "could be determined from measurement
data extracted from manufactured wafers using the method given in [20]"
(Xiong, Zolotov, He, *Robust extraction of spatial correlation*). This
module implements that flow for oxide thickness:

1. split the measured variance into inter-die / spatially-correlated /
   independent components from per-chip site statistics,
2. estimate the empirical site-to-site correlation of the intra-die
   component,
3. fit a monotone parametric correlation function (exponential decay) of
   distance by least squares,
4. repair the resulting matrix to the nearest valid (PSD) correlation —
   the "robust" part of [20].

Input is a measurement campaign: the same ``n_sites`` test structures
measured on ``n_chips`` chips. The round trip (sample synthetic chips ->
extract -> compare) is validated in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.errors import ConfigurationError, NumericalError
from repro.variation.components import VariationBudget


@dataclass(frozen=True)
class ExtractionResult:
    """Variation model recovered from measurement data.

    Attributes
    ----------
    nominal:
        Estimated nominal thickness (grand mean), nm.
    sigma_global, sigma_spatial, sigma_independent:
        Estimated component sigmas, nm.
    correlation_length:
        Fitted exponential correlation length in the distance units of the
        site coordinates.
    site_correlation:
        The repaired (PSD) empirical site-correlation matrix of the
        spatial component.
    fit_residual:
        RMS residual of the parametric correlation fit.
    """

    nominal: float
    sigma_global: float
    sigma_spatial: float
    sigma_independent: float
    correlation_length: float
    site_correlation: np.ndarray
    fit_residual: float

    def to_budget(self) -> VariationBudget:
        """The extracted magnitudes as a :class:`VariationBudget`.

        Raises when the extraction degenerated (zero total variance).
        """
        total_var = (
            self.sigma_global**2
            + self.sigma_spatial**2
            + self.sigma_independent**2
        )
        if total_var <= 0.0:
            raise NumericalError("extraction found no variance to budget")
        sigma_total = float(np.sqrt(total_var))
        return VariationBudget(
            nominal_thickness=self.nominal,
            three_sigma_ratio=3.0 * sigma_total / self.nominal,
            global_fraction=self.sigma_global**2 / total_var,
            spatial_fraction=self.sigma_spatial**2 / total_var,
            independent_fraction=self.sigma_independent**2 / total_var,
        )


def _check_measurements(measurements: np.ndarray, positions: np.ndarray) -> None:
    if measurements.ndim != 2:
        raise ConfigurationError(
            "measurements must be (n_chips, n_sites)"
        )
    n_chips, n_sites = measurements.shape
    if n_chips < 8:
        raise ConfigurationError(
            f"need at least 8 measured chips, got {n_chips}"
        )
    if n_sites < 4:
        raise ConfigurationError(
            f"need at least 4 sites per chip, got {n_sites}"
        )
    if positions.shape != (n_sites, 2):
        raise ConfigurationError(
            f"positions must be ({n_sites}, 2), got {positions.shape}"
        )
    if not np.all(np.isfinite(measurements)):
        raise ConfigurationError("measurements contain non-finite values")


def empirical_site_covariance(measurements: np.ndarray) -> np.ndarray:
    """Raw site-to-site covariance across chips (no mean subtraction).

    Subtracting per-chip means — the tempting shortcut — *confounds* the
    inter-die component with the common mode of long-range spatial
    correlation; [20] instead keeps the raw covariance, whose distance
    structure identifies all three components:

        cov(i, j) = var_global + var_spatial * rho(d_ij)   (i != j)
        cov(i, i) = var_global + var_spatial + var_independent
    """
    return np.cov(np.asarray(measurements, dtype=float).T, ddof=1)


def fit_exponential_correlation(
    covariance: np.ndarray,
    positions: np.ndarray,
) -> tuple[float, float, float, float, float]:
    """Fit ``cov(d) = var_g + var_sp * exp(-d/L)`` plus a nugget.

    The off-diagonal covariances identify the floor (``var_global``, the
    d -> infinity limit), the decaying part (``var_spatial``) and the
    length ``L``; the diagonal excess over the fit at d = 0 is the
    independent nugget. Returns ``(var_global, var_spatial,
    var_independent, length, rms_residual)``.
    """
    n_sites = covariance.shape[0]
    distances = np.linalg.norm(
        positions[:, None, :] - positions[None, :, :], axis=-1
    )
    mask = ~np.eye(n_sites, dtype=bool)
    d_off = distances[mask]
    c_off = covariance[mask]
    var_diag = float(np.mean(np.diag(covariance)))
    floor_guess = max(float(np.min(c_off)), 0.0)
    decay_guess = max(float(np.max(c_off)) - floor_guess, 1e-12 * var_diag)

    def residuals(params: np.ndarray) -> np.ndarray:
        var_g, var_sp, log_length = params
        return var_g + var_sp * np.exp(-d_off / np.exp(log_length)) - c_off

    start = np.array(
        [floor_guess, decay_guess, np.log(max(float(np.median(d_off)), 1e-9))]
    )
    solution = optimize.least_squares(residuals, start, method="lm")
    var_global = float(np.clip(solution.x[0], 0.0, var_diag))
    var_spatial = float(np.clip(solution.x[1], 0.0, var_diag - var_global))
    length = float(np.exp(solution.x[2]))
    var_independent = max(var_diag - var_global - var_spatial, 0.0)
    rms = float(np.sqrt(np.mean(residuals(solution.x) ** 2)))
    return var_global, var_spatial, var_independent, length, rms


def extract_variation_model(
    measurements: np.ndarray,
    positions: np.ndarray,
) -> ExtractionResult:
    """Full [20]-style extraction from a measurement campaign.

    Parameters
    ----------
    measurements:
        ``(n_chips, n_sites)`` thickness measurements (nm).
    positions:
        ``(n_sites, 2)`` site coordinates on the die (mm).
    """
    measurements = np.asarray(measurements, dtype=float)
    positions = np.asarray(positions, dtype=float)
    _check_measurements(measurements, positions)

    nominal = float(measurements.mean())
    covariance = empirical_site_covariance(measurements)
    (
        var_global,
        var_spatial,
        var_independent,
        length,
        rms,
    ) = fit_exponential_correlation(covariance, positions)

    # Robustness step of [20]: project the empirical spatial correlation
    # (raw covariance minus the global floor and the nugget) onto the
    # valid (PSD, unit diagonal) cone.
    from repro.variation.correlation import nearest_correlation_matrix

    if var_spatial > 0.0:
        spatial_cov = (
            covariance
            - var_global
            - var_independent * np.eye(len(covariance))
        )
        diag = np.sqrt(np.clip(np.diag(spatial_cov), 1e-300, None))
        raw_corr = spatial_cov / np.outer(diag, diag)
        np.fill_diagonal(raw_corr, 1.0)
        site_correlation = nearest_correlation_matrix(np.clip(raw_corr, -1, 1))
    else:
        site_correlation = np.eye(len(covariance))

    return ExtractionResult(
        nominal=nominal,
        sigma_global=float(np.sqrt(var_global)),
        sigma_spatial=float(np.sqrt(var_spatial)),
        sigma_independent=float(np.sqrt(var_independent)),
        correlation_length=length,
        site_correlation=site_correlation,
        fit_residual=rms,
    )


def synthesize_measurements(
    budget: VariationBudget,
    positions: np.ndarray,
    correlation_length: float,
    n_chips: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a synthetic measurement campaign (test-structure data).

    The forward model matching the extraction: exponential spatial
    correlation at the given absolute length, plus global and independent
    components from the budget. Used to validate the extraction round
    trip and to stand in for the unavailable silicon data.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ConfigurationError("positions must be (n_sites, 2)")
    if correlation_length <= 0.0:
        raise ConfigurationError("correlation length must be positive")
    if n_chips < 1:
        raise ConfigurationError("need at least one chip")
    n_sites = positions.shape[0]
    distances = np.linalg.norm(
        positions[:, None, :] - positions[None, :, :], axis=-1
    )
    corr = np.exp(-distances / correlation_length)
    from repro.variation.correlation import cholesky_factor

    factor = cholesky_factor(budget.sigma_spatial**2 * corr)
    spatial = rng.standard_normal((n_chips, n_sites)) @ factor.T
    global_part = budget.sigma_global * rng.standard_normal((n_chips, 1))
    independent = budget.sigma_independent * rng.standard_normal(
        (n_chips, n_sites)
    )
    return budget.nominal_thickness + global_part + spatial + independent
