"""Principal-component (canonical) form of the thickness model (eq. (2)).

The correlated per-grid random variables are mapped onto mutually
independent standard-normal factors by eigendecomposition of the spatial
covariance matrix. After the mapping, the thickness of a device in grid
``i`` is

    x = lambda_{i,0} + sum_j lambda_{i,j} z_j + lambda_r * eps

with independent standard normal ``z_j`` (shared by all devices on a chip)
and a per-device standard normal ``eps``. The inter-die component is simply
one more factor whose sensitivity is identical for every grid, which keeps
the dependence between global and spatial components explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.artifacts import memoize_artifact
from repro.obs import metrics
from repro.obs.trace import span
from repro.variation.components import VariationBudget
from repro.variation.correlation import SpatialCorrelationModel


@dataclass(frozen=True)
class CanonicalThicknessModel:
    """Thickness model in canonical (principal-component) form.

    Attributes
    ----------
    grid_means:
        ``(n_grids,)`` nominal thickness per grid cell (``lambda_{i,0}``);
        uniform unless a wafer-level systematic pattern is applied.
    sensitivities:
        ``(n_grids, n_factors)`` matrix of sensitivities ``lambda_{i,j}``.
        Column 0 is the inter-die factor when the model is built by
        :func:`build_canonical_model`.
    sigma_independent:
        The per-device residual sigma (``lambda_r``).
    """

    grid_means: np.ndarray
    sensitivities: np.ndarray
    sigma_independent: float

    def __post_init__(self) -> None:
        grid_means = np.asarray(self.grid_means, dtype=float)
        sens = np.asarray(self.sensitivities, dtype=float)
        if grid_means.ndim != 1:
            raise ConfigurationError("grid_means must be a 1-D array")
        if sens.ndim != 2 or sens.shape[0] != grid_means.shape[0]:
            raise ConfigurationError(
                "sensitivities must be (n_grids, n_factors) matching grid_means"
            )
        if self.sigma_independent < 0.0:
            raise ConfigurationError("sigma_independent must be non-negative")
        # Freeze normalized copies (dataclass is frozen: use object.__setattr__).
        object.__setattr__(self, "grid_means", grid_means)
        object.__setattr__(self, "sensitivities", sens)

    @property
    def n_grids(self) -> int:
        """Number of spatial-correlation grid cells."""
        return self.grid_means.shape[0]

    @property
    def n_factors(self) -> int:
        """Number of independent standard-normal factors (``z`` variables)."""
        return self.sensitivities.shape[1]

    def base_thickness(self, z: np.ndarray) -> np.ndarray:
        """Per-grid deterministic part of thickness for factor draw ``z``.

        ``z`` may be ``(n_factors,)`` for one chip or ``(n_chips,
        n_factors)`` for a batch; the result is ``(n_grids,)`` or
        ``(n_chips, n_grids)`` accordingly. Per-device thickness is this
        base plus ``sigma_independent * eps``.
        """
        z = np.asarray(z, dtype=float)
        if z.shape[-1] != self.n_factors:
            raise ConfigurationError(
                f"expected {self.n_factors} factors, got shape {z.shape}"
            )
        return self.grid_means + z @ self.sensitivities.T

    def grid_covariance(self) -> np.ndarray:
        """Covariance of the per-grid base thickness (excludes residual)."""
        return self.sensitivities @ self.sensitivities.T

    def grid_sigma(self) -> np.ndarray:
        """Per-grid standard deviation of the base thickness."""
        return np.sqrt(np.einsum("ij,ij->i", self.sensitivities, self.sensitivities))

    def device_sigma(self) -> np.ndarray:
        """Per-grid total device-thickness standard deviation.

        Includes the independent residual: every device in grid ``i`` has
        thickness ``N(grid_means[i], device_sigma[i]^2)`` marginally.
        """
        return np.sqrt(self.grid_sigma() ** 2 + self.sigma_independent**2)


def build_canonical_model(
    budget: VariationBudget,
    correlation: SpatialCorrelationModel,
    energy: float = 0.9999,
    max_factors: int | None = None,
    mean_offsets: np.ndarray | None = None,
) -> CanonicalThicknessModel:
    """Build the canonical model from a budget and a correlation model.

    Parameters
    ----------
    budget:
        Magnitudes of the three variation components.
    correlation:
        Grid-based spatial correlation structure.
    energy:
        Keep the smallest set of principal components capturing at least
        this fraction of the spatial variance (PCA truncation). ``1.0``
        keeps every numerically nonzero component.
    max_factors:
        Optional hard cap on the number of *spatial* principal components
        (the inter-die factor is always kept).
    mean_offsets:
        Optional ``(n_grids,)`` deterministic per-grid mean offsets used to
        express a wafer-level systematic pattern (Sec. II, compatibility
        with [21]): replaces the uniform nominal with a location-dependent
        one.

    Returns
    -------
    CanonicalThicknessModel
        Factor 0 is the inter-die component; factors 1.. are the spatial
        principal components sorted by decreasing eigenvalue.
    """
    if not 0.0 < energy <= 1.0:
        raise ConfigurationError(f"energy must be in (0, 1], got {energy}")
    if max_factors is not None and max_factors < 0:
        raise ConfigurationError(f"max_factors must be >= 0, got {max_factors}")
    n_grids = correlation.grid.n_cells
    if mean_offsets is not None:
        mean_offsets = np.asarray(mean_offsets, dtype=float)
        if mean_offsets.shape != (n_grids,):
            raise ConfigurationError(
                f"mean_offsets must have shape ({n_grids},), got {mean_offsets.shape}"
            )
    covariance = correlation.covariance_matrix(budget.sigma_spatial)

    def _compute() -> dict[str, np.ndarray]:
        with span("pca.eig", grids=n_grids):
            eigvals, eigvecs = np.linalg.eigh(covariance)
        # eigh returns ascending order; flip to descending.
        eigvals = eigvals[::-1]
        eigvecs = eigvecs[:, ::-1]
        eigvals = np.clip(eigvals, 0.0, None)

        total = float(eigvals.sum())
        if total <= 0.0:
            n_keep = 0
        else:
            cumulative = np.cumsum(eigvals) / total
            n_keep = int(np.searchsorted(cumulative, energy) + 1)
            n_keep = min(n_keep, n_grids)
        if max_factors is not None:
            n_keep = min(n_keep, max_factors)

        spatial_sens = eigvecs[:, :n_keep] * np.sqrt(eigvals[:n_keep])
        global_sens = np.full((n_grids, 1), budget.sigma_global)
        sensitivities = np.hstack([global_sens, spatial_sens])

        grid_means = np.full(n_grids, budget.nominal_thickness)
        if mean_offsets is not None:
            grid_means = grid_means + mean_offsets
        return {"grid_means": grid_means, "sensitivities": sensitivities}

    # The eigendecomposition dominates an analyzer build; memoize the
    # canonical model across processes keyed on the exact covariance
    # matrix plus every knob that shapes the factor basis.
    arrays = memoize_artifact(
        "canonical_model",
        {
            "covariance": covariance,
            "sigma_global": budget.sigma_global,
            "sigma_independent": budget.sigma_independent,
            "nominal_thickness": budget.nominal_thickness,
            "energy": energy,
            "max_factors": max_factors,
            "mean_offsets": mean_offsets,
        },
        _compute,
        required=("grid_means", "sensitivities"),
    )
    metrics.gauge(
        "pca.spatial_factors", arrays["sensitivities"].shape[1] - 1
    )
    return CanonicalThicknessModel(
        grid_means=arrays["grid_means"],
        sensitivities=arrays["sensitivities"],
        sigma_independent=budget.sigma_independent,
    )


def explained_variance_ratio(
    budget: VariationBudget, correlation: SpatialCorrelationModel
) -> np.ndarray:
    """Sorted fraction of spatial variance captured by each component.

    A diagnostic for choosing the PCA truncation ``energy``: strongly
    correlated dies (large ``rho_dist``) need very few components.
    """
    covariance = correlation.covariance_matrix(budget.sigma_spatial)
    eigvals = np.linalg.eigvalsh(covariance)[::-1]
    eigvals = np.clip(eigvals, 0.0, None)
    total = eigvals.sum()
    if total <= 0.0:
        return np.zeros_like(eigvals)
    return eigvals / total
