"""Quad-tree spatial-correlation model (Agarwal et al. [24]).

An alternative to the grid-covariance model of Sec. II: the die is divided
into ``4^l`` regions at each level ``l = 0..levels-1`` and every region
carries an independent zero-mean normal variable. The spatial component of
a device is the sum of the region variables covering its location, so two
devices are more correlated the more tree levels they share — a coarse but
cheap approximation of distance-based correlation.

The model is expressed here directly in the canonical (factor) form of
eq. (2), which lets the entire downstream analysis (BLOD characterisation,
ensemble integration) run unchanged on either correlation model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError
from repro.variation.components import VariationBudget
from repro.variation.pca import CanonicalThicknessModel


@dataclass(frozen=True)
class QuadTreeModel:
    """Quad-tree decomposition of the spatial variance.

    Parameters
    ----------
    levels:
        Number of tree levels; level ``l`` has ``4**l`` regions.
    level_variances:
        Variance assigned to each level (nm^2). Their sum is the total
        spatial variance of a device.
    """

    levels: int
    level_variances: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ConfigurationError(f"need at least one level, got {self.levels}")
        if len(self.level_variances) != self.levels:
            raise ConfigurationError(
                f"expected {self.levels} level variances, got "
                f"{len(self.level_variances)}"
            )
        if any(v < 0.0 for v in self.level_variances):
            raise ConfigurationError("level variances must be non-negative")

    @classmethod
    def equal_split(cls, sigma_spatial: float, levels: int = 3) -> "QuadTreeModel":
        """Split the spatial variance equally across ``levels`` levels."""
        if levels < 1:
            raise ConfigurationError(f"need at least one level, got {levels}")
        variance = sigma_spatial**2 / levels
        return cls(levels=levels, level_variances=(variance,) * levels)

    @property
    def n_regions(self) -> int:
        """Total number of region variables across all levels."""
        return sum(4**level for level in range(self.levels))

    @property
    def total_variance(self) -> float:
        """Total spatial variance contributed by the tree."""
        return float(sum(self.level_variances))

    def region_of(self, level: int, fx: float, fy: float) -> int:
        """Region index at ``level`` for normalized die coordinates.

        ``fx``/``fy`` in [0, 1]; regions are indexed row-major within a
        level.
        """
        if not 0 <= level < self.levels:
            raise ConfigurationError(f"level {level} out of range")
        side = 2**level
        col = min(int(fx * side), side - 1)
        row = min(int(fy * side), side - 1)
        return row * side + col

    def sensitivities(self, grid: GridSpec) -> np.ndarray:
        """``(n_cells, n_regions)`` factor-sensitivity matrix.

        Each grid cell is assigned (by its centre) one region per level;
        the sensitivity to that region's variable is the level's sigma.
        """
        centers = grid.cell_centers()
        fx = centers[:, 0] / grid.width
        fy = centers[:, 1] / grid.height
        matrix = np.zeros((grid.n_cells, self.n_regions))
        offset = 0
        for level, variance in enumerate(self.level_variances):
            sigma = np.sqrt(variance)
            for cell in range(grid.n_cells):
                region = self.region_of(level, fx[cell], fy[cell])
                matrix[cell, offset + region] = sigma
            offset += 4**level
        return matrix

    def covariance(self, grid: GridSpec) -> np.ndarray:
        """Equivalent per-grid spatial covariance implied by the tree."""
        sens = self.sensitivities(grid)
        return sens @ sens.T


def build_quadtree_model(
    budget: VariationBudget,
    grid: GridSpec,
    levels: int = 3,
    mean_offsets: np.ndarray | None = None,
) -> CanonicalThicknessModel:
    """Canonical thickness model using a quad-tree spatial structure.

    The inter-die component is factor 0 (as in
    :func:`repro.variation.pca.build_canonical_model`); the quad-tree region
    variables follow. The independent residual keeps the budget's sigma.
    """
    tree = QuadTreeModel.equal_split(budget.sigma_spatial, levels=levels)
    spatial_sens = tree.sensitivities(grid)
    global_sens = np.full((grid.n_cells, 1), budget.sigma_global)
    sensitivities = np.hstack([global_sens, spatial_sens])
    grid_means = np.full(grid.n_cells, budget.nominal_thickness)
    if mean_offsets is not None:
        mean_offsets = np.asarray(mean_offsets, dtype=float)
        if mean_offsets.shape != (grid.n_cells,):
            raise ConfigurationError(
                f"mean_offsets must have shape ({grid.n_cells},), "
                f"got {mean_offsets.shape}"
            )
        grid_means = grid_means + mean_offsets
    return CanonicalThicknessModel(
        grid_means=grid_means,
        sensitivities=sensitivities,
        sigma_independent=budget.sigma_independent,
    )
