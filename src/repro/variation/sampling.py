"""Monte-Carlo sampling of manufactured chips.

A "sample chip" is one draw of the shared factor vector ``z`` (inter-die +
spatial principal components) plus independent residuals for each device.
:class:`ChipSampler` binds a floorplan to a canonical thickness model and
produces per-device thickness samples block by block — the raw material for
the Monte-Carlo reference analyses and for the BLOD histograms of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip.floorplan import Floorplan
from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError
from repro.variation.pca import CanonicalThicknessModel


@dataclass(frozen=True)
class BlockGridAssignment:
    """Devices of one block distributed over spatial-correlation grid cells.

    Attributes
    ----------
    grid_indices:
        Indices of the grid cells the block overlaps.
    device_counts:
        Integer device count per overlapped cell (sums to the block's
        ``n_devices``).
    """

    grid_indices: np.ndarray
    device_counts: np.ndarray

    @property
    def n_devices(self) -> int:
        """Total devices covered by this assignment."""
        return int(self.device_counts.sum())

    @property
    def fractions(self) -> np.ndarray:
        """Device fraction per overlapped cell."""
        return self.device_counts / self.n_devices


def assign_devices_to_grid(
    floorplan: Floorplan, grid: GridSpec
) -> list[BlockGridAssignment]:
    """Deterministically distribute each block's devices over grid cells.

    Devices are spread proportionally to the block/cell overlap area using
    largest-remainder rounding, so the integer counts are reproducible and
    exactly sum to each block's device count.
    """
    fractions_matrix = floorplan.device_grid_fractions(grid)
    assignments: list[BlockGridAssignment] = []
    for j, block in enumerate(floorplan.blocks):
        fractions = fractions_matrix[j]
        nonzero = np.nonzero(fractions > 0.0)[0]
        weights = fractions[nonzero]
        raw = block.n_devices * weights / weights.sum()
        counts = np.floor(raw).astype(int)
        shortfall = block.n_devices - counts.sum()
        if shortfall > 0:
            order = np.argsort(raw - counts)[::-1]
            counts[order[:shortfall]] += 1
        keep = counts > 0
        assignments.append(
            BlockGridAssignment(
                grid_indices=nonzero[keep], device_counts=counts[keep]
            )
        )
    return assignments


class ChipSampler:
    """Draws manufactured-chip samples for a design.

    Parameters
    ----------
    floorplan:
        The design's temperature-uniform blocks.
    grid:
        Spatial-correlation grid of the thickness model.
    model:
        Canonical thickness model on that grid.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        grid: GridSpec,
        model: CanonicalThicknessModel,
    ) -> None:
        if model.n_grids != grid.n_cells:
            raise ConfigurationError(
                f"model has {model.n_grids} grids but grid has "
                f"{grid.n_cells} cells"
            )
        self.floorplan = floorplan
        self.grid = grid
        self.model = model
        self.assignments = assign_devices_to_grid(floorplan, grid)

    def sample_factors(
        self, n_chips: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``(n_chips, n_factors)`` standard-normal factor draws."""
        if n_chips < 1:
            raise ConfigurationError(f"n_chips must be >= 1, got {n_chips}")
        return rng.standard_normal((n_chips, self.model.n_factors))

    def block_base_thickness(self, z: np.ndarray) -> list[np.ndarray]:
        """Per-block per-grid base thickness for factor draw(s) ``z``.

        For a single chip (``z`` of shape ``(n_factors,)``) returns, for
        each block, the base thickness of each overlapped grid cell. For a
        batch, each entry has shape ``(n_chips, n_cells_of_block)``.
        """
        base = self.model.base_thickness(z)
        return [base[..., a.grid_indices] for a in self.assignments]

    def device_thicknesses(
        self, z: np.ndarray, block_index: int, rng: np.random.Generator
    ) -> np.ndarray:
        """All device thicknesses of one block for a single chip.

        Returns an ``(m_j,)`` array: base thickness of the device's grid
        cell plus an independent residual draw. Devices appear grouped by
        grid cell (order within a block carries no meaning: the analysis is
        location-free within a cell).
        """
        z = np.asarray(z, dtype=float)
        if z.ndim != 1:
            raise ConfigurationError("device_thicknesses needs a single chip draw")
        assignment = self.assignments[block_index]
        base = self.model.base_thickness(z)[assignment.grid_indices]
        per_device_base = np.repeat(base, assignment.device_counts)
        residual = self.model.sigma_independent * rng.standard_normal(
            per_device_base.shape[0]
        )
        return per_device_base + residual

    def chip_thicknesses(
        self, z: np.ndarray, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """Device thicknesses for every block of a single chip."""
        return [
            self.device_thicknesses(z, j, rng)
            for j in range(self.floorplan.n_blocks)
        ]

    def sample_block_moments(
        self, n_chips: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Empirical BLOD sample means and variances across chips.

        Draws ``n_chips`` chips, computes for each block the sample mean
        ``u_j`` and unbiased sample variance ``v_j`` of its device
        thicknesses. Returns arrays of shape ``(n_chips, n_blocks)``. This
        is the brute-force reference the analytical BLOD characterisation
        (eq. (22)/(24)) is validated against.
        """
        n_blocks = self.floorplan.n_blocks
        means = np.empty((n_chips, n_blocks))
        variances = np.empty((n_chips, n_blocks))
        factors = self.sample_factors(n_chips, rng)
        for c in range(n_chips):
            for j in range(n_blocks):
                thickness = self.device_thicknesses(factors[c], j, rng)
                means[c, j] = thickness.mean()
                variances[c, j] = thickness.var(ddof=1)
        return means, variances
