"""Wafer-level systematic variation patterns (Sec. II, refs [21]-[23]).

Part of what looks like intra-die spatially correlated variation is in fact
a deterministic across-wafer pattern (slanted or bowl shaped), usually
characterised by a low-order polynomial of wafer position. Given the
location of a chip on the wafer, the pattern induces a *location-dependent
mean offset* for each grid cell, which the canonical model accepts through
its ``mean_offsets`` argument — exactly the compatibility path the paper
describes (replace the uniform inter-die term with a per-grid component).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WaferPattern:
    """A quadratic across-wafer systematic thickness pattern.

    The offset at wafer coordinates ``(wx, wy)`` (millimetres, origin at
    the wafer centre) is::

        offset = c0 + cx*wx + cy*wy + cxx*wx^2 + cyy*wy^2 + cxy*wx*wy

    Typical shapes:

    - *bowl*: positive ``cxx``/``cyy``, zero linear terms.
    - *slanted*: nonzero linear terms, zero quadratic terms.
    """

    c0: float = 0.0
    cx: float = 0.0
    cy: float = 0.0
    cxx: float = 0.0
    cyy: float = 0.0
    cxy: float = 0.0
    wafer_radius: float = 150.0

    def __post_init__(self) -> None:
        if self.wafer_radius <= 0.0:
            raise ConfigurationError(
                f"wafer radius must be positive, got {self.wafer_radius}"
            )

    @classmethod
    def bowl(cls, depth: float, wafer_radius: float = 150.0) -> "WaferPattern":
        """A radially symmetric bowl: ``depth`` nm offset at the wafer edge."""
        curvature = depth / wafer_radius**2
        return cls(cxx=curvature, cyy=curvature, wafer_radius=wafer_radius)

    @classmethod
    def slanted(
        cls, slope_x: float, slope_y: float = 0.0, wafer_radius: float = 150.0
    ) -> "WaferPattern":
        """A planar tilt in nm/mm along each wafer axis."""
        return cls(cx=slope_x, cy=slope_y, wafer_radius=wafer_radius)

    def offset_at(self, wx: np.ndarray, wy: np.ndarray) -> np.ndarray:
        """Pattern offset (nm) at wafer coordinates ``(wx, wy)``."""
        wx = np.asarray(wx, dtype=float)
        wy = np.asarray(wy, dtype=float)
        return (
            self.c0
            + self.cx * wx
            + self.cy * wy
            + self.cxx * wx**2
            + self.cyy * wy**2
            + self.cxy * wx * wy
        )

    def grid_offsets(
        self, grid: GridSpec, chip_x: float, chip_y: float
    ) -> np.ndarray:
        """Per-grid-cell mean offsets for a chip placed on the wafer.

        ``(chip_x, chip_y)`` locates the chip's lower-left corner in wafer
        coordinates. The entire chip must fit on the wafer.

        Returns an ``(n_cells,)`` vector suitable for
        :func:`repro.variation.pca.build_canonical_model`'s
        ``mean_offsets``.
        """
        corners_x = np.array([chip_x, chip_x + grid.width])
        corners_y = np.array([chip_y, chip_y + grid.height])
        corner_r = np.sqrt(
            np.add.outer(corners_x**2, corners_y**2)
        ).max()
        if corner_r > self.wafer_radius:
            raise ConfigurationError(
                f"chip at ({chip_x}, {chip_y}) extends beyond the "
                f"{self.wafer_radius} mm wafer radius"
            )
        centers = grid.cell_centers()
        return np.asarray(
            self.offset_at(chip_x + centers[:, 0], chip_y + centers[:, 1])
        )
