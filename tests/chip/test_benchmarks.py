"""Unit tests for the benchmark design generators (C1-C6, many-core)."""

import numpy as np
import pytest

from repro.chip.benchmarks import (
    BENCHMARK_DEVICE_COUNTS,
    _apportion,
    make_alpha_processor,
    make_benchmark,
    make_manycore,
    make_synthetic_design,
)
from repro.errors import ConfigurationError


class TestApportion:
    def test_exact_total(self):
        counts = _apportion(1000, np.array([1.0, 2.0, 3.0]))
        assert counts.sum() == 1000

    def test_proportionality(self):
        counts = _apportion(6000, np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(counts, [1000, 2000, 3000], atol=2)

    def test_every_bin_gets_at_least_one(self):
        counts = _apportion(4, np.array([1e6, 1.0, 1.0, 1.0]))
        assert counts.min() >= 1
        assert counts.sum() == 4

    def test_rejects_too_few_units(self):
        with pytest.raises(ConfigurationError):
            _apportion(2, np.array([1.0, 1.0, 1.0]))

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ConfigurationError):
            _apportion(10, np.array([1.0, 0.0]))


class TestSyntheticDesigns:
    def test_device_count_exact(self):
        fp = make_synthetic_design("X", 12345, 7, 4.0, seed=1)
        assert fp.n_devices == 12345
        assert fp.n_blocks == 7

    def test_deterministic_by_seed(self):
        a = make_synthetic_design("X", 5000, 5, 3.0, seed=9)
        b = make_synthetic_design("X", 5000, 5, 3.0, seed=9)
        assert a.block_names == b.block_names
        for ba, bb in zip(a.blocks, b.blocks, strict=True):
            assert ba.rect == bb.rect
            assert ba.n_devices == bb.n_devices
            assert ba.power == bb.power

    def test_different_seeds_differ(self):
        a = make_synthetic_design("X", 5000, 5, 3.0, seed=1)
        b = make_synthetic_design("X", 5000, 5, 3.0, seed=2)
        assert any(
            ba.n_devices != bb.n_devices for ba, bb in zip(a.blocks, b.blocks, strict=True)
        )

    def test_blocks_tile_die(self):
        fp = make_synthetic_design("X", 5000, 9, 4.0, seed=3)
        assert fp.coverage() == pytest.approx(1.0)

    def test_power_contrast_present(self):
        fp = make_synthetic_design("X", 5000, 9, 4.0, seed=3)
        densities = np.array([b.power_density for b in fp.blocks])
        assert densities.max() / densities.min() > 1.5

    def test_total_power_default_density(self):
        fp = make_synthetic_design("X", 5000, 5, 4.0, seed=1)
        assert fp.total_power == pytest.approx(0.4 * 16.0)

    def test_explicit_total_power(self):
        fp = make_synthetic_design("X", 5000, 5, 4.0, seed=1, total_power=30.0)
        assert fp.total_power == pytest.approx(30.0)

    def test_rejects_more_blocks_than_devices(self):
        with pytest.raises(ConfigurationError):
            make_synthetic_design("X", 3, 5, 4.0, seed=1)


class TestPaperBenchmarks:
    @pytest.mark.parametrize("name", ["C1", "C2", "C3", "C4", "C5"])
    def test_synthetic_benchmark_device_counts(self, name):
        fp = make_benchmark(name)
        assert fp.n_devices == BENCHMARK_DEVICE_COUNTS[name]

    def test_case_insensitive(self):
        assert make_benchmark("c1").n_devices == 50_000

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_benchmark("C9")

    def test_benchmarks_are_stable(self):
        a = make_benchmark("C2")
        b = make_benchmark("C2")
        assert [blk.rect for blk in a.blocks] == [blk.rect for blk in b.blocks]


class TestAlphaProcessor:
    def test_device_count_is_paper_c6(self):
        fp = make_alpha_processor()
        assert fp.n_devices == 840_000
        assert fp.n_devices == BENCHMARK_DEVICE_COUNTS["C6"]

    def test_classic_module_names_present(self):
        fp = make_alpha_processor()
        for name in ("icache", "dcache", "bpred", "fpadd", "intexec"):
            assert name in fp.block_names

    def test_valid_floorplan_geometry(self):
        fp = make_alpha_processor()
        # Construction already validates non-overlap/in-die; sanity checks:
        assert fp.width == 16.0
        assert 0.9 <= fp.coverage() <= 1.0

    def test_execution_units_hotter_than_caches(self):
        fp = make_alpha_processor()
        exec_density = fp.block("intexec").power_density
        cache_density = fp.block("icache").power_density
        assert exec_density > 2.0 * cache_density

    def test_make_benchmark_c6_is_alpha(self):
        fp = make_benchmark("C6")
        assert fp.block_names == make_alpha_processor().block_names


class TestManycore:
    def test_tile_layout(self):
        fp = make_manycore(n_cores_x=3, n_cores_y=2, die_size=6.0)
        assert fp.n_blocks == 6
        assert fp.coverage() == pytest.approx(1.0)

    def test_active_cores_hotter(self):
        fp = make_manycore(
            n_cores_x=2, n_cores_y=2, active_cores=(0,), core_power=4.0
        )
        powers = [b.power for b in fp.blocks]
        assert powers[0] == pytest.approx(4.0)
        assert powers[1] == pytest.approx(0.4)

    def test_default_diagonal_band(self):
        fp = make_manycore(n_cores_x=4, n_cores_y=4)
        # Diagonal cores are the active ones.
        assert fp.block("core_0_0").power > fp.block("core_0_1").power

    def test_rejects_bad_active_index(self):
        with pytest.raises(ConfigurationError):
            make_manycore(n_cores_x=2, n_cores_y=2, active_cores=(7,))

    def test_rejects_empty_array(self):
        with pytest.raises(ConfigurationError):
            make_manycore(n_cores_x=0, n_cores_y=2)
