"""Unit tests for blocks and floorplans."""

import numpy as np
import pytest

from repro.chip.floorplan import Block, Floorplan
from repro.chip.geometry import GridSpec, Rect
from repro.errors import FloorplanError


def _block(name, x, y, w, h, devices=100, power=1.0, avg_area=1.0):
    return Block(
        name=name,
        rect=Rect(x, y, w, h),
        n_devices=devices,
        avg_device_area=avg_area,
        power=power,
    )


class TestBlock:
    def test_total_oxide_area(self):
        block = _block("b", 0, 0, 1, 1, devices=500, avg_area=1.5)
        assert block.total_oxide_area == pytest.approx(750.0)

    def test_power_density(self):
        block = _block("b", 0, 0, 2, 1, power=4.0)
        assert block.power_density == pytest.approx(2.0)

    def test_with_power_returns_copy(self):
        block = _block("b", 0, 0, 1, 1, power=1.0)
        other = block.with_power(5.0)
        assert other.power == 5.0
        assert block.power == 1.0
        assert other.name == block.name

    def test_rejects_empty_name(self):
        with pytest.raises(FloorplanError):
            _block("", 0, 0, 1, 1)

    def test_rejects_zero_devices(self):
        with pytest.raises(FloorplanError):
            _block("b", 0, 0, 1, 1, devices=0)

    def test_rejects_negative_power(self):
        with pytest.raises(FloorplanError):
            _block("b", 0, 0, 1, 1, power=-1.0)

    def test_rejects_non_positive_avg_area(self):
        with pytest.raises(FloorplanError):
            _block("b", 0, 0, 1, 1, avg_area=0.0)


class TestFloorplan:
    def test_aggregates(self):
        fp = Floorplan(
            width=2.0,
            height=2.0,
            blocks=(
                _block("a", 0, 0, 1, 2, devices=100, power=1.0),
                _block("b", 1, 0, 1, 2, devices=200, power=2.0, avg_area=2.0),
            ),
        )
        assert fp.n_blocks == 2
        assert fp.n_devices == 300
        assert fp.total_power == pytest.approx(3.0)
        assert fp.total_oxide_area == pytest.approx(100 + 400)
        assert fp.block_names == ("a", "b")
        assert fp.coverage() == pytest.approx(1.0)

    def test_lookup_by_name(self):
        fp = Floorplan(
            width=2.0, height=2.0, blocks=(_block("a", 0, 0, 1, 1),)
        )
        assert fp.block("a").name == "a"
        with pytest.raises(KeyError):
            fp.block("missing")

    def test_rejects_duplicate_names(self):
        with pytest.raises(FloorplanError, match="duplicate"):
            Floorplan(
                width=2.0,
                height=2.0,
                blocks=(_block("a", 0, 0, 1, 1), _block("a", 1, 0, 1, 1)),
            )

    def test_rejects_block_outside_die(self):
        with pytest.raises(FloorplanError, match="outside"):
            Floorplan(
                width=2.0,
                height=2.0,
                blocks=(_block("a", 1.5, 0, 1.0, 1.0),),
            )

    def test_rejects_overlapping_blocks(self):
        with pytest.raises(FloorplanError, match="overlap"):
            Floorplan(
                width=2.0,
                height=2.0,
                blocks=(
                    _block("a", 0, 0, 1.5, 1.0),
                    _block("b", 1.0, 0, 1.0, 1.0),
                ),
            )

    def test_allows_touching_blocks(self):
        fp = Floorplan(
            width=2.0,
            height=1.0,
            blocks=(_block("a", 0, 0, 1, 1), _block("b", 1, 0, 1, 1)),
        )
        assert fp.n_blocks == 2

    def test_rejects_empty_floorplan(self):
        with pytest.raises(FloorplanError):
            Floorplan(width=1.0, height=1.0, blocks=())

    def test_with_powers_partial_update(self):
        fp = Floorplan(
            width=2.0,
            height=1.0,
            blocks=(
                _block("a", 0, 0, 1, 1, power=1.0),
                _block("b", 1, 0, 1, 1, power=2.0),
            ),
        )
        updated = fp.with_powers({"a": 5.0})
        assert updated.block("a").power == 5.0
        assert updated.block("b").power == 2.0
        # Original untouched.
        assert fp.block("a").power == 1.0

    def test_with_powers_rejects_unknown_block(self):
        fp = Floorplan(
            width=1.0, height=1.0, blocks=(_block("a", 0, 0, 1, 1),)
        )
        with pytest.raises(KeyError):
            fp.with_powers({"zzz": 1.0})

    def test_make_grid_matches_die(self):
        fp = Floorplan(
            width=4.0, height=2.0, blocks=(_block("a", 0, 0, 1, 1),)
        )
        grid = fp.make_grid(8, 4)
        assert grid.width == 4.0
        assert grid.height == 2.0
        assert grid.n_cells == 32

    def test_device_grid_fractions_rows_sum_to_one(self, small_floorplan):
        grid = small_floorplan.make_grid(5)
        fractions = small_floorplan.device_grid_fractions(grid)
        assert fractions.shape == (small_floorplan.n_blocks, 25)
        np.testing.assert_allclose(fractions.sum(axis=1), 1.0)

    def test_device_grid_fractions_single_cell_grid(self, small_floorplan):
        grid = small_floorplan.make_grid(1)
        fractions = small_floorplan.device_grid_fractions(grid)
        np.testing.assert_allclose(fractions, 1.0)

    def test_device_grid_fractions_localised(self):
        fp = Floorplan(
            width=2.0,
            height=2.0,
            blocks=(_block("a", 0, 0, 1, 1),),  # lower-left quadrant
        )
        grid = GridSpec(nx=2, ny=2, width=2.0, height=2.0)
        fractions = fp.device_grid_fractions(grid)
        np.testing.assert_allclose(fractions[0], [1.0, 0.0, 0.0, 0.0])
