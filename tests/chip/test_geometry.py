"""Unit tests for rectangles and regular grids."""

import numpy as np
import pytest

from repro.chip.geometry import GridSpec, Rect
from repro.errors import FloorplanError


class TestRect:
    def test_basic_properties(self):
        rect = Rect(1.0, 2.0, 3.0, 4.0)
        assert rect.x2 == 4.0
        assert rect.y2 == 6.0
        assert rect.area == 12.0
        assert rect.center == (2.5, 4.0)

    @pytest.mark.parametrize("w,h", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_non_positive_size(self, w, h):
        with pytest.raises(FloorplanError):
            Rect(0.0, 0.0, w, h)

    def test_contains_point_boundary_inclusive(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.contains_point(0.0, 0.0)
        assert rect.contains_point(1.0, 1.0)
        assert rect.contains_point(0.5, 0.5)
        assert not rect.contains_point(1.01, 0.5)

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 4.0, 4.0)
        inner = Rect(1.0, 1.0, 2.0, 2.0)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_overlap_area_partial(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 2.0, 2.0)
        assert a.overlap_area(b) == pytest.approx(1.0)
        assert b.overlap_area(a) == pytest.approx(1.0)

    def test_overlap_area_disjoint_and_touching(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        assert a.overlap_area(Rect(2.0, 2.0, 1.0, 1.0)) == 0.0
        # Touching edges share no area.
        assert a.overlap_area(Rect(1.0, 0.0, 1.0, 1.0)) == 0.0

    def test_intersection(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 0.5, 3.0, 1.0)
        inter = a.intersection(b)
        assert inter == Rect(1.0, 0.5, 1.0, 1.0)
        assert a.intersection(Rect(5.0, 5.0, 1.0, 1.0)) is None

    def test_split_horizontal_preserves_area(self):
        rect = Rect(0.0, 0.0, 4.0, 2.0)
        left, right = rect.split_horizontal(0.25)
        assert left.width == pytest.approx(1.0)
        assert right.x == pytest.approx(1.0)
        assert left.area + right.area == pytest.approx(rect.area)

    def test_split_vertical_preserves_area(self):
        rect = Rect(0.0, 0.0, 4.0, 2.0)
        bottom, top = rect.split_vertical(0.5)
        assert bottom.height == pytest.approx(1.0)
        assert top.y == pytest.approx(1.0)
        assert bottom.area + top.area == pytest.approx(rect.area)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 1.5])
    def test_split_rejects_bad_fraction(self, fraction):
        with pytest.raises(FloorplanError):
            Rect(0.0, 0.0, 1.0, 1.0).split_horizontal(fraction)

    def test_distance_between_centers(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)  # centre (1, 1)
        b = Rect(3.0, 4.0, 2.0, 2.0)  # centre (4, 5)
        assert a.distance_to(b) == pytest.approx(5.0)


class TestGridSpec:
    def test_cell_counts_and_sizes(self):
        grid = GridSpec(nx=4, ny=2, width=8.0, height=2.0)
        assert grid.n_cells == 8
        assert grid.cell_width == pytest.approx(2.0)
        assert grid.cell_height == pytest.approx(1.0)
        assert grid.diagonal == pytest.approx(np.hypot(8.0, 2.0))

    def test_rejects_degenerate_grid(self):
        with pytest.raises(FloorplanError):
            GridSpec(nx=0, ny=2, width=1.0, height=1.0)
        with pytest.raises(FloorplanError):
            GridSpec(nx=2, ny=2, width=0.0, height=1.0)

    def test_cell_rect_row_major(self):
        grid = GridSpec(nx=3, ny=2, width=3.0, height=2.0)
        assert grid.cell_rect(0) == Rect(0.0, 0.0, 1.0, 1.0)
        assert grid.cell_rect(2) == Rect(2.0, 0.0, 1.0, 1.0)
        assert grid.cell_rect(3) == Rect(0.0, 1.0, 1.0, 1.0)

    def test_cell_rect_index_bounds(self):
        grid = GridSpec(nx=2, ny=2, width=2.0, height=2.0)
        with pytest.raises(FloorplanError):
            grid.cell_rect(4)
        with pytest.raises(FloorplanError):
            grid.cell_rect(-1)

    def test_cell_of_point_round_trip(self):
        grid = GridSpec(nx=5, ny=5, width=5.0, height=5.0)
        for index in range(grid.n_cells):
            cx, cy = grid.cell_rect(index).center
            assert grid.cell_of_point(cx, cy) == index

    def test_cell_of_point_clamps_boundary(self):
        grid = GridSpec(nx=2, ny=2, width=2.0, height=2.0)
        assert grid.cell_of_point(2.0, 2.0) == 3

    def test_cell_of_point_rejects_outside(self):
        grid = GridSpec(nx=2, ny=2, width=2.0, height=2.0)
        with pytest.raises(FloorplanError):
            grid.cell_of_point(-0.1, 1.0)

    def test_cell_centers_shape_and_order(self):
        grid = GridSpec(nx=2, ny=3, width=2.0, height=3.0)
        centers = grid.cell_centers()
        assert centers.shape == (6, 2)
        np.testing.assert_allclose(centers[0], [0.5, 0.5])
        np.testing.assert_allclose(centers[1], [1.5, 0.5])
        np.testing.assert_allclose(centers[2], [0.5, 1.5])

    def test_pairwise_distances_symmetric_zero_diag(self):
        grid = GridSpec(nx=3, ny=3, width=3.0, height=3.0)
        dist = grid.pairwise_center_distances()
        assert dist.shape == (9, 9)
        np.testing.assert_allclose(dist, dist.T)
        np.testing.assert_allclose(np.diag(dist), 0.0)
        assert dist[0, 1] == pytest.approx(1.0)
        assert dist[0, 4] == pytest.approx(np.sqrt(2.0))

    def test_overlap_fractions_sum_to_one_on_die(self):
        grid = GridSpec(nx=4, ny=4, width=4.0, height=4.0)
        rect = Rect(0.5, 0.5, 2.0, 1.5)
        fractions = grid.overlap_fractions(rect)
        assert fractions.shape == (16,)
        assert fractions.sum() == pytest.approx(1.0)

    def test_overlap_fractions_single_cell(self):
        grid = GridSpec(nx=2, ny=2, width=2.0, height=2.0)
        rect = Rect(0.1, 0.1, 0.5, 0.5)  # entirely in cell 0
        fractions = grid.overlap_fractions(rect)
        assert fractions[0] == pytest.approx(1.0)
        assert fractions[1:].sum() == pytest.approx(0.0)

    def test_overlap_fractions_even_split(self):
        grid = GridSpec(nx=2, ny=1, width=2.0, height=1.0)
        rect = Rect(0.5, 0.0, 1.0, 1.0)  # half in each column
        fractions = grid.overlap_fractions(rect)
        np.testing.assert_allclose(fractions, [0.5, 0.5])

    def test_field_to_image_shape(self):
        grid = GridSpec(nx=3, ny=2, width=3.0, height=2.0)
        image = grid.field_to_image(np.arange(6.0))
        assert image.shape == (2, 3)
        assert image[0, 2] == 2.0
        assert image[1, 0] == 3.0

    def test_field_to_image_rejects_wrong_size(self):
        grid = GridSpec(nx=3, ny=2, width=3.0, height=2.0)
        with pytest.raises(ValueError):
            grid.field_to_image(np.arange(5.0))
