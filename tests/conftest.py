"""Shared fixtures for the repro test suite.

Designs used by the tests are intentionally tiny (a few thousand devices,
coarse grids) so the full suite runs in seconds; paper-scale runs live in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AnalysisConfig,
    Block,
    Floorplan,
    OBDModel,
    Rect,
    ReliabilityAnalyzer,
    VariationBudget,
    make_synthetic_design,
)


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory) -> None:
    """Point the kernels artifact cache at a per-session scratch dir.

    Keeps the suite from reading (or polluting) the developer's real
    ``~/.cache/repro/artifacts`` store; subprocess-based tests inherit
    the variable, so they stay isolated too.
    """
    import os

    root = tmp_path_factory.mktemp("artifact-cache")
    os.environ["REPRO_ARTIFACT_CACHE_DIR"] = str(root)


@pytest.fixture(scope="session")
def budget() -> VariationBudget:
    """The paper's Table II variation budget."""
    return VariationBudget.table2()


@pytest.fixture(scope="session")
def obd_model() -> OBDModel:
    """The default calibrated OBD model."""
    return OBDModel()


@pytest.fixture(scope="session")
def tiny_floorplan() -> Floorplan:
    """A 2-block hand-built floorplan with explicit geometry."""
    return Floorplan(
        width=2.0,
        height=2.0,
        blocks=(
            Block(
                name="hot",
                rect=Rect(0.0, 0.0, 2.0, 1.0),
                n_devices=2000,
                avg_device_area=1.0,
                power=2.0,
            ),
            Block(
                name="cool",
                rect=Rect(0.0, 1.0, 2.0, 1.0),
                n_devices=3000,
                avg_device_area=1.2,
                power=0.3,
            ),
        ),
    )


@pytest.fixture(scope="session")
def small_floorplan() -> Floorplan:
    """A generated 4-block, 5K-device synthetic design."""
    return make_synthetic_design(
        name="T", n_devices=5000, n_blocks=4, die_size=2.0, seed=42
    )


@pytest.fixture(scope="session")
def fast_config() -> AnalysisConfig:
    """A coarse, fast configuration for unit tests."""
    return AnalysisConfig(grid_size=6, st_mc_samples=2000, mc_chunk_size=50)


@pytest.fixture(scope="session")
def small_analyzer(small_floorplan, fast_config) -> ReliabilityAnalyzer:
    """A fully prepared analyzer for the small synthetic design."""
    return ReliabilityAnalyzer(small_floorplan, config=fast_config)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
