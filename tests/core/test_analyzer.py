"""Unit tests for the ReliabilityAnalyzer facade."""

import numpy as np
import pytest

from repro import (
    AnalysisConfig,
    OBDModel,
    ReliabilityAnalyzer,
    VariationBudget,
)
from repro.core.analyzer import METHODS
from repro.errors import ConfigurationError


class TestConstruction:
    def test_default_construction_runs_thermal(self, small_floorplan):
        analyzer = ReliabilityAnalyzer(small_floorplan)
        assert analyzer.thermal is not None
        assert analyzer.block_temperatures.shape == (
            small_floorplan.n_blocks,
        )
        # Self-heating above ambient.
        assert np.all(analyzer.block_temperatures > 45.0)

    def test_explicit_temperatures_skip_thermal(self, small_floorplan):
        temps = np.full(small_floorplan.n_blocks, 85.0)
        analyzer = ReliabilityAnalyzer(
            small_floorplan, block_temperatures=temps
        )
        assert analyzer.thermal is None
        np.testing.assert_allclose(analyzer.block_temperatures, 85.0)

    def test_temperature_shape_checked(self, small_floorplan):
        with pytest.raises(ConfigurationError):
            ReliabilityAnalyzer(
                small_floorplan, block_temperatures=np.array([85.0])
            )

    def test_powerless_floorplan_uses_reference_temperature(
        self, small_floorplan, obd_model
    ):
        cold = small_floorplan.with_powers(
            {name: 0.0 for name in small_floorplan.block_names}
        )
        analyzer = ReliabilityAnalyzer(cold)
        np.testing.assert_allclose(
            analyzer.block_temperatures, obd_model.t_ref
        )

    def test_grid_and_blods_prepared(self, small_analyzer):
        cfg = small_analyzer.config
        assert small_analyzer.grid.n_cells == cfg.grid_size**2
        assert len(small_analyzer.blods) == small_analyzer.floorplan.n_blocks
        assert len(small_analyzer.blocks) == small_analyzer.floorplan.n_blocks

    def test_hotter_block_has_smaller_alpha(self, small_analyzer):
        temps = small_analyzer.block_temperatures
        alphas = np.array([b.alpha for b in small_analyzer.blocks])
        assert alphas[np.argmax(temps)] == alphas.min()

    def test_summary_structure(self, small_analyzer):
        summary = small_analyzer.summary()
        assert summary["design"]["devices"] == small_analyzer.floorplan.n_devices
        assert len(summary["temperatures_c"]) == small_analyzer.floorplan.n_blocks
        assert summary["variation"]["nominal_nm"] == 2.2


class TestMethods:
    def test_all_methods_return_probabilities(self, small_analyzer):
        t = small_analyzer.lifetime(10, method="st_fast")
        for method in METHODS:
            value = small_analyzer.reliability(
                t, method=method, mc_chips=50
            )
            assert 0.0 <= float(value) <= 1.0

    def test_unknown_method_rejected(self, small_analyzer):
        with pytest.raises(ConfigurationError):
            small_analyzer.reliability(1e5, method="astrology")

    def test_scalar_vector_consistency(self, small_analyzer):
        t = small_analyzer.lifetime(10)
        times = np.array([t / 2.0, t, 2.0 * t])
        vec = small_analyzer.reliability(times)
        assert float(small_analyzer.reliability(t)) == pytest.approx(vec[1])

    def test_statistical_methods_agree(self, small_analyzer):
        """Table III in miniature: st_fast, st_mc, hybrid within ~1-2 %."""
        lt_fast = small_analyzer.lifetime(10, method="st_fast")
        lt_mc = small_analyzer.lifetime(10, method="st_mc")
        lt_hyb = small_analyzer.lifetime(10, method="hybrid")
        assert lt_mc == pytest.approx(lt_fast, rel=0.03)
        assert lt_hyb == pytest.approx(lt_fast, rel=0.03)

    def test_method_ordering(self, small_analyzer):
        """guard < temp_unaware < st_fast lifetimes (Fig. 10 ordering)."""
        lt_fast = small_analyzer.lifetime(10, method="st_fast")
        lt_unaware = small_analyzer.lifetime(10, method="temp_unaware")
        lt_guard = small_analyzer.lifetime(10, method="guard")
        assert lt_guard < lt_unaware < lt_fast

    def test_one_ppm_earlier_than_ten_ppm(self, small_analyzer):
        assert small_analyzer.lifetime(1) < small_analyzer.lifetime(10)

    def test_lifetime_solves_reliability(self, small_analyzer):
        t = small_analyzer.lifetime(10)
        assert float(small_analyzer.reliability(t)) == pytest.approx(
            1.0 - 1e-5, abs=1e-9
        )

    def test_mc_lifetime_close_to_st_fast(self, small_analyzer):
        lt_fast = small_analyzer.lifetime(10, method="st_fast")
        lt_mc = small_analyzer.mc_lifetime(10, n_chips=300, seed=1)
        assert lt_mc == pytest.approx(lt_fast, rel=0.1)

    def test_lifetime_mc_method_redirects(self, small_analyzer):
        with pytest.raises(ConfigurationError):
            small_analyzer.lifetime(10, method="mc")

    def test_mc_failure_times(self, small_analyzer):
        ft = small_analyzer.mc_failure_times(n_chips=100, seed=2)
        assert ft.shape == (100,)
        assert np.all(ft > 0.0)


class TestConfigurationEffects:
    def test_vdd_override_shortens_life(self, small_floorplan, fast_config):
        import dataclasses

        nominal = ReliabilityAnalyzer(small_floorplan, config=fast_config)
        boosted = ReliabilityAnalyzer(
            small_floorplan,
            config=dataclasses.replace(fast_config, vdd=1.3),
        )
        assert boosted.lifetime(10) < nominal.lifetime(10)

    def test_correlation_distance_affects_result_mildly(
        self, small_floorplan, fast_config
    ):
        import dataclasses

        lifetimes = []
        for rho in (0.25, 0.75):
            analyzer = ReliabilityAnalyzer(
                small_floorplan,
                config=dataclasses.replace(fast_config, rho_dist=rho),
            )
            lifetimes.append(analyzer.lifetime(10))
        # Correlation structure shifts the answer but not wildly.
        assert lifetimes[0] == pytest.approx(lifetimes[1], rel=0.3)

    def test_quadtree_correlation_model_option(
        self, small_floorplan, fast_config
    ):
        import dataclasses

        grid_based = ReliabilityAnalyzer(small_floorplan, config=fast_config)
        quadtree = ReliabilityAnalyzer(
            small_floorplan,
            config=dataclasses.replace(
                fast_config, correlation_model="quadtree", quadtree_levels=2
            ),
        )
        assert quadtree.correlation is None
        lt_grid = grid_based.lifetime(10)
        lt_qt = quadtree.lifetime(10)
        # Different correlation structures, same ballpark.
        assert lt_qt == pytest.approx(lt_grid, rel=0.3)

    def test_unknown_correlation_model_rejected(
        self, small_floorplan, fast_config
    ):
        import dataclasses

        with pytest.raises(ConfigurationError, match="correlation model"):
            ReliabilityAnalyzer(
                small_floorplan,
                config=dataclasses.replace(
                    fast_config, correlation_model="kriging"
                ),
            )

    def test_mean_offsets_shift_lifetime(self, small_floorplan, fast_config):
        flat = ReliabilityAnalyzer(small_floorplan, config=fast_config)
        thicker = ReliabilityAnalyzer(
            small_floorplan,
            config=fast_config,
            mean_offsets=np.full(fast_config.grid_size**2, 0.02),
        )
        # Uniformly thicker oxide lives longer.
        assert thicker.lifetime(10) > flat.lifetime(10)

    def test_custom_budget_and_model(self, small_floorplan, fast_config):
        analyzer = ReliabilityAnalyzer(
            small_floorplan,
            budget=VariationBudget(three_sigma_ratio=0.02),
            obd_model=OBDModel(alpha_ref=1e9),
            config=fast_config,
        )
        assert analyzer.budget.three_sigma_ratio == 0.02
        assert analyzer.lifetime(10) > 0.0
