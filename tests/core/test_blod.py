"""Unit tests for the BLOD characterisation (eq. (22)/(24)).

The load-bearing validation here is *analytical moments versus brute-force
sampling*: the closed-form u/v distributions must agree with empirical
sample means/variances computed from per-device chip draws.
"""

import numpy as np
import pytest

from repro.core.blod import BlodModel, characterize_blods
from repro.errors import ConfigurationError
from repro.stats.integration import NormalDist
from repro.stats.quadform import Chi2Match
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.pca import build_canonical_model
from repro.variation.sampling import ChipSampler
from repro.variation.wafer import WaferPattern


@pytest.fixture(scope="module")
def setup(request):
    small_floorplan = request.getfixturevalue("small_floorplan")
    budget = request.getfixturevalue("budget")
    grid = small_floorplan.make_grid(5)
    correlation = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
    model = build_canonical_model(budget, correlation)
    sampler = ChipSampler(small_floorplan, grid, model)
    blods = characterize_blods(
        small_floorplan, grid, model, sampler.assignments
    )
    return small_floorplan, grid, model, sampler, blods


class TestCharacterizeBlods:
    def test_one_blod_per_block(self, setup):
        floorplan, _grid, _model, _sampler, blods = setup
        assert len(blods) == floorplan.n_blocks
        for block, blod in zip(floorplan.blocks, blods, strict=True):
            assert blod.name == block.name
            assert blod.area == pytest.approx(block.total_oxide_area)
            assert blod.n_devices == block.n_devices

    def test_u_nominal_is_grid_mean(self, setup, budget):
        _fp, _grid, _model, _sampler, blods = setup
        for blod in blods:
            assert blod.u_nominal == pytest.approx(budget.nominal_thickness)

    def test_u_sigma_between_global_and_total(self, setup, budget):
        # The BLOD mean retains the full global component and most of the
        # (block-averaged) spatial component; the independent part washes
        # out by 1/sqrt(m).
        _fp, _grid, _model, _sampler, blods = setup
        for blod in blods:
            assert budget.sigma_global * 0.99 < blod.u_sigma
            assert blod.u_sigma < np.sqrt(
                budget.sigma_global**2 + budget.sigma_spatial**2
            ) * (1.0 + 1e-9)

    def test_v_mean_close_to_residual_variance(self, setup, budget):
        _fp, _grid, _model, _sampler, blods = setup
        for blod in blods:
            assert blod.v_mean() >= budget.sigma_independent**2 * 0.999
            assert blod.v_mean() <= (
                budget.sigma_independent**2 + budget.sigma_spatial**2
            )

    def test_u_dist_type(self, setup):
        _fp, _grid, _model, _sampler, blods = setup
        assert isinstance(blods[0].u_dist(), NormalDist)

    def test_v_chi2_match_type(self, setup):
        _fp, _grid, _model, _sampler, blods = setup
        match = blods[0].v_chi2_match()
        assert isinstance(match, Chi2Match)
        assert match.mean() == pytest.approx(blods[0].v_mean(), rel=1e-9)

    def test_moments_match_brute_force_sampling(self, setup, rng):
        """The headline check: closed-form eq. (22)/(24) vs per-device MC."""
        _fp, _grid, _model, sampler, blods = setup
        emp_means, emp_vars = sampler.sample_block_moments(400, rng)
        for j, blod in enumerate(blods):
            # BLOD mean distribution.
            assert emp_means[:, j].mean() == pytest.approx(
                blod.u_nominal, abs=4.0 * blod.u_sigma / np.sqrt(400)
            )
            assert emp_means[:, j].std(ddof=1) == pytest.approx(
                blod.u_sigma, rel=0.2
            )
            # BLOD variance distribution.
            v_form_mean = blod.v_mean()
            assert emp_vars[:, j].mean() == pytest.approx(v_form_mean, rel=0.05)
            match = blod.v_chi2_match()
            assert emp_vars[:, j].std(ddof=1) == pytest.approx(
                np.sqrt(match.var()), rel=0.3
            )

    def test_u_samples_match_closed_form_sigma(self, setup, rng):
        _fp, _grid, model, _sampler, blods = setup
        z = rng.standard_normal((50000, model.n_factors))
        for blod in blods[:2]:
            u = blod.u_samples(z)
            # u_samples drops the 1/sqrt(m) residual, so compare to the
            # factor part only.
            factor_sigma = np.linalg.norm(blod.u_sensitivities)
            assert u.std() == pytest.approx(factor_sigma, rel=0.02)
            assert u.mean() == pytest.approx(blod.u_nominal, abs=1e-3)

    def test_v_samples_with_and_without_noise(self, setup, rng):
        _fp, _grid, model, _sampler, blods = setup
        z = rng.standard_normal((20000, model.n_factors))
        blod = blods[0]
        deterministic = blod.v_samples(z)
        noisy = blod.v_samples(z, rng=rng)
        assert deterministic.mean() == pytest.approx(blod.v_mean(), rel=0.05)
        # The residual sampling noise widens the distribution.
        assert noisy.std() >= deterministic.std()

    def test_v_nonnegative(self, setup, rng):
        _fp, _grid, model, _sampler, blods = setup
        z = rng.standard_normal((5000, model.n_factors))
        for blod in blods:
            assert np.all(blod.v_samples(z) >= 0.0)


class TestBlodModelValidation:
    def test_rejects_mismatched_matrix(self):
        with pytest.raises(ConfigurationError):
            BlodModel(
                name="x",
                area=10.0,
                n_devices=100,
                u_nominal=2.2,
                u_sensitivities=np.zeros(3),
                sigma_independent=0.01,
                v_matrix=np.zeros((4, 4)),
            )

    def test_rejects_single_device(self):
        with pytest.raises(ConfigurationError):
            BlodModel(
                name="x",
                area=1.0,
                n_devices=1,
                u_nominal=2.2,
                u_sensitivities=np.zeros(2),
                sigma_independent=0.01,
                v_matrix=np.zeros((2, 2)),
            )

    def test_rejects_zero_area(self):
        with pytest.raises(ConfigurationError):
            BlodModel(
                name="x",
                area=0.0,
                n_devices=100,
                u_nominal=2.2,
                u_sensitivities=np.zeros(2),
                sigma_independent=0.01,
                v_matrix=np.zeros((2, 2)),
            )


class TestSingleGridBlock:
    """A block fully inside one grid cell: the spatial quadratic form
    vanishes and v is exactly the residual chi-square."""

    @pytest.fixture()
    def single_grid_blod(self, small_floorplan, budget):
        grid = small_floorplan.make_grid(1)  # everything in one cell
        correlation = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        model = build_canonical_model(budget, correlation)
        return characterize_blods(small_floorplan, grid, model)[0]

    def test_v_matrix_vanishes(self, single_grid_blod):
        np.testing.assert_allclose(single_grid_blod.v_matrix, 0.0, atol=1e-18)

    def test_v_chi2_match_is_exact_residual(self, single_grid_blod, budget):
        match = single_grid_blod.v_chi2_match(include_residual_fluctuation=True)
        assert isinstance(match, Chi2Match)
        m = single_grid_blod.n_devices
        # v = lambda_r^2 * chi2(m-1)/(m-1) exactly.
        assert match.dof == pytest.approx(m - 1)
        assert match.scale == pytest.approx(
            budget.sigma_independent**2 / (m - 1)
        )

    def test_paper_match_degenerates_to_point_mass(self, single_grid_blod):
        from repro.stats.integration import PointMass

        match = single_grid_blod.v_chi2_match(include_residual_fluctuation=False)
        assert isinstance(match, PointMass)
        assert match.value == pytest.approx(single_grid_blod.v_offset)

    def test_u_sigma_has_no_spatial_spread_beyond_budget(
        self, single_grid_blod, budget
    ):
        expected = np.sqrt(budget.sigma_global**2 + budget.sigma_spatial**2)
        # Slightly above "expected" because u_sigma keeps the tiny
        # lambda_r/sqrt(m) residual contribution.
        assert single_grid_blod.u_sigma >= expected
        assert single_grid_blod.u_sigma == pytest.approx(expected, rel=1e-3)


class TestWaferPatternBlod:
    def test_deterministic_spread_appears_in_v_offset(
        self, small_floorplan, budget
    ):
        grid = small_floorplan.make_grid(5)
        correlation = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        pattern = WaferPattern.slanted(slope_x=0.02)
        offsets = pattern.grid_offsets(grid, chip_x=10.0, chip_y=10.0)
        flat = build_canonical_model(budget, correlation)
        tilted = build_canonical_model(budget, correlation, mean_offsets=offsets)
        blods_flat = characterize_blods(small_floorplan, grid, flat)
        blods_tilted = characterize_blods(small_floorplan, grid, tilted)
        assert all(b.v_deterministic == 0.0 for b in blods_flat)
        assert any(b.v_deterministic > 0.0 for b in blods_tilted)
        for bf, bt in zip(blods_flat, blods_tilted, strict=True):
            assert bt.v_offset >= bf.v_offset
