"""Unit tests for burn-in / screening analysis."""

import numpy as np
import pytest

from repro.core.burnin import BurnInAnalyzer, ExtrinsicDefectModel
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def analyzer(request):
    return request.getfixturevalue("small_analyzer")


@pytest.fixture(scope="module")
def defects():
    return ExtrinsicDefectModel(
        density=5.0e-7, alpha=5.0e5, beta=0.4, acceleration=2000.0
    )


class TestExtrinsicDefectModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExtrinsicDefectModel(density=-1.0)
        with pytest.raises(ConfigurationError):
            ExtrinsicDefectModel(beta=1.5)  # wearout slopes not allowed
        with pytest.raises(ConfigurationError):
            ExtrinsicDefectModel(acceleration=0.5)

    def test_exponent_monotone_in_time(self, defects):
        e1 = defects.exponent(1e5, t_use=1e3, t_stress=0.0)
        e2 = defects.exponent(1e5, t_use=1e4, t_stress=0.0)
        assert 0.0 < e1 < e2

    def test_burnin_advances_effective_age(self, defects):
        no_burnin = defects.exponent(1e5, t_use=1e3, t_stress=0.0)
        with_burnin = defects.exponent(1e5, t_use=1e3, t_stress=10.0)
        assert with_burnin > no_burnin

    def test_decreasing_hazard(self, defects):
        # Infant mortality: most of the defect failure probability is
        # consumed early.
        area = 1e5
        first_decade = defects.exponent(area, 1e2, 0.0)
        second_decade = defects.exponent(area, 1e3, 0.0) - first_decade
        assert first_decade > second_decade / 9.0  # strongly front-loaded


class TestBurnInIntrinsicOnly:
    def test_burnin_consumes_intrinsic_life(self, analyzer):
        """With no defect population, burn-in can only hurt: wearout slope
        above 1 means no infant mortality to screen."""
        burnin = BurnInAnalyzer(analyzer, defects=None)
        warranty = analyzer.lifetime(1000)  # observable failure level
        f_none = burnin.field_failure_probability(warranty, 0.0)
        f_some = burnin.field_failure_probability(warranty, 24.0)
        assert f_some >= f_none

    def test_zero_burnin_matches_static_analysis(self, analyzer):
        burnin = BurnInAnalyzer(analyzer, defects=None)
        t10 = analyzer.lifetime(10)
        assert burnin.survival(t10, 0.0) == pytest.approx(
            float(analyzer.reliability(t10)), abs=1e-9
        )

    def test_yield_decreases_with_burnin_time(self, analyzer):
        burnin = BurnInAnalyzer(analyzer, defects=None)
        yields = [burnin.burnin_yield(t) for t in (0.0, 10.0, 100.0)]
        assert yields[0] == pytest.approx(1.0)
        assert yields[0] >= yields[1] >= yields[2]

    def test_stress_condition_accelerates(self, analyzer):
        mild = BurnInAnalyzer(
            analyzer, burnin_temperature=105.0, burnin_vdd=1.25, defects=None
        )
        harsh = BurnInAnalyzer(
            analyzer, burnin_temperature=140.0, burnin_vdd=1.6, defects=None
        )
        assert harsh.burnin_yield(24.0) <= mild.burnin_yield(24.0)


class TestBurnInWithDefects:
    def test_burnin_pays_off_with_infant_mortality(self, analyzer, defects):
        burnin = BurnInAnalyzer(analyzer, defects=defects)
        warranty = 5.0 * 8766.0  # five years
        f_none = burnin.field_failure_probability(warranty, 0.0)
        f_screened = burnin.field_failure_probability(warranty, 12.0)
        assert f_screened < f_none

    def test_optimizer_finds_interior_optimum(self, analyzer, defects):
        burnin = BurnInAnalyzer(analyzer, defects=defects)
        warranty = 5.0 * 8766.0
        candidates = np.array([0.0, 1.0, 6.0, 24.0, 96.0, 384.0])
        best, curve = burnin.optimize_burnin(warranty, candidates)
        assert set(curve) == set(candidates.tolist())
        # Screening helps, so "no burn-in" is not optimal...
        assert best > 0.0
        # ...but unbounded burn-in consumes intrinsic life: the curve must
        # eventually turn back up (or the longest candidate is not best).
        assert curve[best] <= min(curve.values())

    def test_optimizer_picks_zero_without_defects(self, analyzer):
        burnin = BurnInAnalyzer(analyzer, defects=None)
        warranty = analyzer.lifetime(1000)
        best, _curve = burnin.optimize_burnin(
            warranty, np.array([0.0, 24.0, 96.0])
        )
        assert best == 0.0

    def test_validation(self, analyzer, defects):
        burnin = BurnInAnalyzer(analyzer, defects=defects)
        with pytest.raises(ConfigurationError):
            burnin.survival(-1.0, 0.0)
        with pytest.raises(ConfigurationError):
            burnin.field_failure_probability(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            burnin.optimize_burnin(1e4, np.array([]))
