"""Unit tests for the closed-form conditional reliability (eq. (9)-(18))."""

import numpy as np
import pytest
from scipy import integrate, stats as sps

from repro.core.closed_form import (
    block_failure,
    block_survival,
    conditional_chip_reliability_exact,
    conditional_chip_reliability_taylor,
    device_conditional_reliability,
    log_g,
    safe_log_t_ratio,
)
from repro.errors import ConfigurationError


class TestLogG:
    def test_matches_gaussian_integral(self):
        """g(u, v) is the exact integral of eq. (17): compare against
        numerical quadrature of phi((x-u)/sqrt(v)) * (t/alpha)^(b x)."""
        u, v, b = 2.2, 2.5e-4, 1.4
        log_t_ratio = -8.0
        expected, _ = integrate.quad(
            lambda x: sps.norm.pdf(x, u, np.sqrt(v))
            * np.exp(log_t_ratio * b * x),
            u - 10.0 * np.sqrt(v),
            u + 10.0 * np.sqrt(v),
        )
        assert np.exp(log_g(u, v, log_t_ratio, b)) == pytest.approx(
            expected, rel=1e-9
        )

    def test_zero_variance_reduces_to_point(self):
        u, b, log_t_ratio = 2.2, 1.4, -10.0
        assert log_g(u, 0.0, log_t_ratio, b) == pytest.approx(
            log_t_ratio * b * u
        )

    def test_variance_increases_g(self):
        # Thickness spread always hurts: the thin tail dominates.
        base = log_g(2.2, 0.0, -10.0, 1.4)
        spread = log_g(2.2, 3e-4, -10.0, 1.4)
        assert spread > base

    def test_rejects_bad_b(self):
        with pytest.raises(ConfigurationError):
            log_g(2.2, 1e-4, -10.0, 0.0)


class TestBlockSurvival:
    def test_in_unit_interval(self):
        log_t = np.linspace(-30.0, 2.0, 50)
        s = block_survival(2.2, 2e-4, log_t, 1.4, 1e5)
        assert np.all(s >= 0.0)
        assert np.all(s <= 1.0)

    def test_monotone_decreasing_in_time(self):
        log_t = np.linspace(-20.0, -2.0, 50)
        s = block_survival(2.2, 2e-4, log_t, 1.4, 1e5)
        assert np.all(np.diff(s) <= 1e-15)

    def test_failure_complementary(self):
        log_t = np.linspace(-12.0, -4.0, 10)
        s = block_survival(2.2, 2e-4, log_t, 1.4, 1e5)
        f = block_failure(2.2, 2e-4, log_t, 1.4, 1e5)
        np.testing.assert_allclose(s + f, 1.0, atol=1e-12)

    def test_failure_precise_in_deep_tail(self):
        # expm1 path keeps precision where 1 - exp(-x) ~ x ~ 1e-12.
        f = block_failure(2.2, 2e-4, np.array([-20.0]), 1.4, 1e5)
        assert 0.0 < f[0] < 1e-6

    def test_area_scaling(self):
        log_t = np.array([-10.0])
        f1 = block_failure(2.2, 2e-4, log_t, 1.4, 1e4)
        f2 = block_failure(2.2, 2e-4, log_t, 1.4, 2e4)
        # In the rare-failure regime failure probability is ~linear in area.
        assert f2[0] == pytest.approx(2.0 * f1[0], rel=1e-3)

    def test_thicker_oxide_more_reliable(self):
        log_t = np.array([-10.0])
        thin = block_failure(2.1, 2e-4, log_t, 1.4, 1e5)
        thick = block_failure(2.3, 2e-4, log_t, 1.4, 1e5)
        assert thick[0] < thin[0]

    def test_no_overflow_far_future(self):
        s = block_survival(2.2, 2e-4, np.array([50.0]), 1.4, 1e6)
        assert s[0] == 0.0


class TestDeviceConditionalReliability:
    def test_matches_weibull(self):
        alpha, b, x, area = 1e8, 1.4, 2.2, 2.0
        t = np.array([1e4, 1e6])
        expected = np.exp(-area * (t / alpha) ** (b * x))
        np.testing.assert_allclose(
            device_conditional_reliability(t, x, alpha, b, area), expected
        )

    def test_at_time_zero(self):
        assert device_conditional_reliability(0.0, 2.2, 1e8, 1.4) == 1.0

    def test_vector_thickness(self):
        x = np.array([2.1, 2.2, 2.3])
        r = device_conditional_reliability(1e6, x, 1e8, 1.4)
        assert np.all(np.diff(r) > 0.0)  # thicker -> more reliable


class TestConditionalChipReliability:
    @pytest.fixture()
    def chip(self):
        n = 4
        return dict(
            u=np.full(n, 2.2),
            v=np.full(n, 2e-4),
            log_t_ratios=np.full(n, -9.0),
            bs=np.full(n, 1.4),
            areas=np.full(n, 2e4),
        )

    def test_exact_is_product_form(self, chip):
        value = conditional_chip_reliability_exact(**chip)
        single = block_survival(2.2, 2e-4, np.array([-9.0]), 1.4, 2e4)[0]
        assert value == pytest.approx(single**4, rel=1e-9)

    def test_taylor_close_to_exact_when_reliable(self, chip):
        exact = conditional_chip_reliability_exact(**chip)
        taylor = conditional_chip_reliability_taylor(**chip)
        assert taylor == pytest.approx(exact, abs=1e-6)

    def test_taylor_undershoots_far_in_time(self, chip):
        chip["log_t_ratios"] = np.full(4, -0.5)
        raw = conditional_chip_reliability_taylor(**chip, clip=False)
        clipped = conditional_chip_reliability_taylor(**chip, clip=True)
        assert raw < 0.0
        assert clipped == 0.0

    def test_taylor_upper_bounds_exact(self, chip):
        # 1 - sum(1-s_j) <= prod(s_j) for s_j in [0, 1].
        for lt in (-12.0, -8.0, -5.0, -2.0):
            chip["log_t_ratios"] = np.full(4, lt)
            exact = conditional_chip_reliability_exact(**chip)
            taylor = conditional_chip_reliability_taylor(**chip, clip=False)
            assert taylor <= exact + 1e-12

    def test_shape_mismatch_rejected(self, chip):
        chip["bs"] = np.full(3, 1.4)
        with pytest.raises(ConfigurationError):
            conditional_chip_reliability_exact(**chip)


class TestSafeLogTRatio:
    def test_regular_values(self):
        np.testing.assert_allclose(
            safe_log_t_ratio(np.array([1.0, np.e]), 1.0), [0.0, 1.0]
        )

    def test_zero_time_maps_to_minus_inf(self):
        out = safe_log_t_ratio(np.array([0.0, 1.0]), 2.0)
        assert out[0] == -np.inf
        assert np.isfinite(out[1])

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            safe_log_t_ratio(np.array([-1.0]), 1.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            safe_log_t_ratio(np.array([1.0]), 0.0)
