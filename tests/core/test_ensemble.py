"""Unit tests for the ensemble analyzers (st_fast / st_mc, eq. (28))."""

import numpy as np
import pytest

from repro.core.ensemble import (
    BlockReliability,
    StFastAnalyzer,
    StMcAnalyzer,
    worst_case_blocks,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def blocks(request):
    analyzer = request.getfixturevalue("small_analyzer")
    return analyzer.blocks


@pytest.fixture(scope="module")
def times(request):
    analyzer = request.getfixturevalue("small_analyzer")
    center = analyzer.lifetime(10, method="guard")
    return np.logspace(np.log10(center) - 0.8, np.log10(center) + 1.2, 12)


class TestBlockReliability:
    def test_validation(self, blocks):
        with pytest.raises(ConfigurationError):
            BlockReliability(blod=blocks[0].blod, alpha=0.0, b=1.0)
        with pytest.raises(ConfigurationError):
            BlockReliability(blod=blocks[0].blod, alpha=1.0, b=0.0)

    def test_name_passthrough(self, blocks):
        assert blocks[0].name == blocks[0].blod.name


class TestStFastAnalyzer:
    def test_reliability_bounds_and_monotonicity(self, blocks, times):
        analyzer = StFastAnalyzer(blocks)
        r = analyzer.reliability(times)
        assert np.all(r >= 0.0)
        assert np.all(r <= 1.0)
        assert np.all(np.diff(r) <= 1e-12)

    def test_reliability_at_zero_is_one(self, blocks):
        analyzer = StFastAnalyzer(blocks)
        assert analyzer.reliability(0.0) == pytest.approx(1.0)

    def test_scalar_and_vector_consistent(self, blocks, times):
        analyzer = StFastAnalyzer(blocks)
        scalar = analyzer.reliability(float(times[3]))
        vector = analyzer.reliability(times)
        assert scalar == pytest.approx(vector[3])

    def test_failure_probability_complementary(self, blocks, times):
        analyzer = StFastAnalyzer(blocks)
        np.testing.assert_allclose(
            analyzer.reliability(times) + analyzer.failure_probability(times),
            1.0,
            atol=1e-12,
        )

    def test_block_failures_sum_to_chip_failure(self, blocks, times):
        analyzer = StFastAnalyzer(blocks)
        per_block = analyzer.block_failure_probabilities(times)
        assert per_block.shape == (len(blocks), times.size)
        np.testing.assert_allclose(
            1.0 - per_block.sum(axis=0),
            analyzer.reliability(times, clip=False),
            atol=1e-12,
        )

    def test_l0_ten_matches_fine_grid(self, blocks, times):
        # The paper's claim: l0 = 10 is already accurate.
        coarse = StFastAnalyzer(blocks, l0=10)
        fine = StFastAnalyzer(blocks, l0=60)
        f_coarse = coarse.failure_probability(times)
        f_fine = fine.failure_probability(times)
        mask = f_fine > 1e-14
        np.testing.assert_allclose(
            f_coarse[mask], f_fine[mask], rtol=0.02
        )

    def test_gauss_rule_matches_midpoint(self, blocks, times):
        midpoint = StFastAnalyzer(blocks, l0=20, rule="midpoint")
        gauss = StFastAnalyzer(blocks, l0=20, rule="gauss")
        f_m = midpoint.failure_probability(times)
        f_g = gauss.failure_probability(times)
        mask = f_g > 1e-14
        np.testing.assert_allclose(f_m[mask], f_g[mask], rtol=0.02)

    def test_thickness_variation_hurts_reliability(self, small_analyzer, times):
        """The whole point of the paper: more variation, earlier failures —
        and the guard-band corner is even worse than any distribution."""
        from repro import ReliabilityAnalyzer, VariationBudget

        tight = VariationBudget(three_sigma_ratio=0.01)
        loose = VariationBudget(three_sigma_ratio=0.06)
        an_tight = ReliabilityAnalyzer(
            small_analyzer.floorplan,
            budget=tight,
            config=small_analyzer.config,
        )
        an_loose = ReliabilityAnalyzer(
            small_analyzer.floorplan,
            budget=loose,
            config=small_analyzer.config,
        )
        assert an_loose.lifetime(10) < an_tight.lifetime(10)

    def test_rejects_empty_blocks(self):
        with pytest.raises(ConfigurationError):
            StFastAnalyzer([])

    def test_rejects_unknown_rule(self, blocks):
        with pytest.raises(ConfigurationError):
            StFastAnalyzer(blocks, rule="simpson")


class TestStMcAnalyzer:
    def test_matches_st_fast(self, blocks, times):
        """Table III: st_mc and st_fast agree to a fraction of a percent."""
        fast = StFastAnalyzer(blocks)
        mc = StMcAnalyzer(blocks, n_samples=20000, seed=5)
        f_fast = fast.failure_probability(times)
        f_mc = mc.failure_probability(times)
        mask = f_fast > 1e-12
        np.testing.assert_allclose(f_mc[mask], f_fast[mask], rtol=0.1)

    def test_histogram_estimator_close_to_samples(self, blocks, times):
        samples = StMcAnalyzer(blocks, n_samples=20000, seed=5)
        histogram = StMcAnalyzer(
            blocks, n_samples=20000, seed=5, estimator="histogram", bins=20
        )
        f_s = samples.failure_probability(times)
        f_h = histogram.failure_probability(times)
        mask = f_s > 1e-12
        np.testing.assert_allclose(f_h[mask], f_s[mask], rtol=0.15)

    def test_reproducible_with_seed(self, blocks, times):
        a = StMcAnalyzer(blocks, n_samples=5000, seed=9)
        b = StMcAnalyzer(blocks, n_samples=5000, seed=9)
        np.testing.assert_array_equal(
            a.reliability(times), b.reliability(times)
        )

    def test_moment_samples_exposed(self, blocks):
        analyzer = StMcAnalyzer(blocks, n_samples=2000, seed=1)
        u, v = analyzer.block_moment_samples(0)
        assert u.shape == (2000,)
        assert v.shape == (2000,)
        assert np.all(v >= 0.0)

    def test_rejects_too_few_samples(self, blocks):
        with pytest.raises(ConfigurationError):
            StMcAnalyzer(blocks, n_samples=10)

    def test_rejects_unknown_estimator(self, blocks):
        with pytest.raises(ConfigurationError):
            StMcAnalyzer(blocks, estimator="kde")

    @pytest.mark.parametrize("sampler", ["lhs", "sobol"])
    def test_qmc_samplers_match_mc(self, blocks, times, sampler):
        mc = StMcAnalyzer(blocks, n_samples=8000, seed=3, sampler="mc")
        qmc = StMcAnalyzer(blocks, n_samples=8000, seed=3, sampler=sampler)
        f_mc = mc.failure_probability(times)
        f_qmc = qmc.failure_probability(times)
        mask = f_mc > 1e-12
        np.testing.assert_allclose(f_qmc[mask], f_mc[mask], rtol=0.15)

    def test_qmc_reduces_scatter(self, blocks):
        """QMC draws reproduce the st_fast answer with less seed-to-seed
        scatter than plain MC at the same sample count."""
        fast = StFastAnalyzer(blocks)
        t_ref = None
        # Pick a time where failure is well resolved.
        import numpy as np

        from repro.core.lifetime import lifetime_at_ppm

        t_ref = lifetime_at_ppm(lambda t: float(fast.reliability(t)), 100.0)
        times = np.array([t_ref])

        def scatter(sampler):
            values = [
                float(
                    StMcAnalyzer(
                        blocks, n_samples=2000, seed=seed, sampler=sampler
                    ).failure_probability(times)[0]
                )
                for seed in range(6)
            ]
            return float(np.std(np.log(values)))

        assert scatter("lhs") < scatter("mc") * 1.5  # typically much lower

    def test_rejects_unknown_sampler(self, blocks):
        with pytest.raises(ConfigurationError):
            StMcAnalyzer(blocks, sampler="halton")


class TestWorstCaseBlocks:
    def test_all_blocks_get_worst_params(self, blocks):
        worst = worst_case_blocks(blocks)
        alpha_min = min(block.alpha for block in blocks)
        assert all(block.alpha == alpha_min for block in worst)
        # BLODs are preserved.
        assert [w.blod.name for w in worst] == [b.blod.name for b in blocks]

    def test_temp_unaware_is_pessimistic(self, blocks, times):
        aware = StFastAnalyzer(blocks)
        unaware = StFastAnalyzer(worst_case_blocks(blocks))
        r_aware = aware.reliability(times)
        r_unaware = unaware.reliability(times)
        assert np.all(r_unaware <= r_aware + 1e-15)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            worst_case_blocks([])
