"""Unit tests for the guard-band baseline (eq. (33)-(34))."""

import numpy as np
import pytest

from repro.core.guardband import GuardBandAnalyzer
from repro.errors import ConfigurationError


@pytest.fixture()
def guard():
    return GuardBandAnalyzer(
        total_area=1e5, alpha_worst=1e8, b_worst=1.4, x_min=2.112
    )


class TestGuardBandAnalyzer:
    def test_reliability_form(self, guard):
        t = 1e4
        expected = np.exp(-1e5 * (t / 1e8) ** (1.4 * 2.112))
        assert guard.reliability(t) == pytest.approx(expected, rel=1e-12)

    def test_lifetime_closed_form(self, guard):
        r_req = 1.0 - 1e-5
        expected = 1e8 * (-np.log(r_req) / 1e5) ** (1.0 / (1.4 * 2.112))
        assert guard.lifetime(r_req) == pytest.approx(expected, rel=1e-12)

    def test_lifetime_reliability_round_trip(self, guard):
        r_req = 1.0 - 1e-6
        t = guard.lifetime(r_req)
        assert guard.reliability(t) == pytest.approx(r_req, abs=1e-12)

    def test_failure_probability_stable_in_tail(self, guard):
        t = guard.lifetime(1.0 - 1e-9)
        f = guard.failure_probability(t)
        assert f == pytest.approx(1e-9, rel=1e-6)

    def test_larger_area_shorter_lifetime(self):
        small = GuardBandAnalyzer(1e4, 1e8, 1.4, 2.112)
        large = GuardBandAnalyzer(1e6, 1e8, 1.4, 2.112)
        r = 1.0 - 1e-5
        assert large.lifetime(r) < small.lifetime(r)

    def test_thinner_guard_band_shorter_lifetime(self):
        thick = GuardBandAnalyzer(1e5, 1e8, 1.4, 2.2)
        thin = GuardBandAnalyzer(1e5, 1e8, 1.4, 2.0)
        assert thin.lifetime(1.0 - 1e-5) < thick.lifetime(1.0 - 1e-5)

    def test_monotone_reliability(self, guard):
        t = np.logspace(2.0, 7.0, 30)
        assert np.all(np.diff(guard.reliability(t)) < 0.0)

    def test_scalar_and_vector(self, guard):
        t = np.array([1e3, 1e4])
        vec = guard.reliability(t)
        assert vec.shape == (2,)
        assert guard.reliability(1e3) == pytest.approx(vec[0])

    def test_rejects_bad_target(self, guard):
        with pytest.raises(ConfigurationError):
            guard.lifetime(0.0)
        with pytest.raises(ConfigurationError):
            guard.lifetime(1.0)

    def test_rejects_negative_time(self, guard):
        with pytest.raises(ConfigurationError):
            guard.reliability(np.array([-1.0]))

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            GuardBandAnalyzer(0.0, 1e8, 1.4, 2.1)
        with pytest.raises(ConfigurationError):
            GuardBandAnalyzer(1e5, 1e8, 1.4, -2.1)


class TestGuardVsStatistical:
    def test_guard_is_pessimistic(self, small_analyzer):
        """Table III: guard-band underestimates lifetime by ~half."""
        lt_stat = small_analyzer.lifetime(10, method="st_fast")
        lt_guard = small_analyzer.lifetime(10, method="guard")
        assert lt_guard < lt_stat
        error = 1.0 - lt_guard / lt_stat
        assert 0.25 < error < 0.75
