"""Unit tests for the hybrid table-look-up analyzer (Sec. IV-E)."""

import numpy as np
import pytest

from repro.core.ensemble import StFastAnalyzer
from repro.core.hybrid import HybridAnalyzer
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def blocks(request):
    return request.getfixturevalue("small_analyzer").blocks


@pytest.fixture(scope="module")
def times(request):
    analyzer = request.getfixturevalue("small_analyzer")
    center = analyzer.lifetime(10, method="guard")
    return np.logspace(np.log10(center) - 0.8, np.log10(center) + 1.2, 12)


@pytest.fixture(scope="module")
def hybrid(blocks):
    return HybridAnalyzer(blocks, n_alpha=100, n_b=100)


class TestHybridAccuracy:
    def test_matches_st_fast(self, blocks, hybrid, times):
        """Table III: the hybrid method keeps st_fast-level accuracy."""
        fast = StFastAnalyzer(blocks)
        f_fast = fast.failure_probability(times)
        f_hyb = hybrid.failure_probability(times)
        mask = f_fast > 1e-12
        np.testing.assert_allclose(f_hyb[mask], f_fast[mask], rtol=0.05)

    def test_reliability_bounds_and_monotone(self, hybrid, times):
        r = hybrid.reliability(times)
        assert np.all((0.0 <= r) & (r <= 1.0))
        assert np.all(np.diff(r) <= 1e-12)

    def test_time_zero(self, hybrid):
        assert hybrid.reliability(0.0) == pytest.approx(1.0)

    def test_finer_table_more_accurate(self, blocks, times):
        fast = StFastAnalyzer(blocks)
        f_ref = fast.failure_probability(times)
        mask = f_ref > 1e-12
        coarse = HybridAnalyzer(blocks, n_alpha=12, n_b=12)
        fine = HybridAnalyzer(blocks, n_alpha=200, n_b=200)
        err_coarse = np.max(
            np.abs(coarse.failure_probability(times)[mask] / f_ref[mask] - 1.0)
        )
        err_fine = np.max(
            np.abs(fine.failure_probability(times)[mask] / f_ref[mask] - 1.0)
        )
        assert err_fine <= err_coarse


class TestHybridProfileReuse:
    def test_different_profile_via_overrides(self, blocks, hybrid, times):
        """The hybrid value proposition: re-evaluate a new temperature
        profile without rebuilding tables."""
        # A hotter profile: all alphas scaled down 2x, bs nudged.
        alphas = np.array([b.alpha for b in blocks]) / 2.0
        bs = np.array([b.b for b in blocks]) * 0.99
        f_new = hybrid.failure_probability(times, alphas=alphas, bs=bs)
        # Reference: a fresh st_fast with the same overridden parameters.
        from repro.core.ensemble import BlockReliability

        new_blocks = [
            BlockReliability(blod=b.blod, alpha=a, b=bb)
            for b, a, bb in zip(blocks, alphas, bs, strict=True)
        ]
        f_ref = StFastAnalyzer(new_blocks).failure_probability(times)
        mask = f_ref > 1e-12
        np.testing.assert_allclose(f_new[mask], f_ref[mask], rtol=0.05)

    def test_hotter_profile_fails_earlier(self, blocks, hybrid, times):
        alphas = np.array([b.alpha for b in blocks])
        f_nom = hybrid.failure_probability(times)
        f_hot = hybrid.failure_probability(times, alphas=alphas / 3.0)
        assert np.all(f_hot >= f_nom)

    def test_override_shape_checked(self, hybrid, times):
        with pytest.raises(ConfigurationError):
            hybrid.failure_probability(times, alphas=np.array([1.0]))


class TestHybridRangeHandling:
    def test_b_outside_table_rejected(self, blocks, hybrid, times):
        bs = np.array([b.b for b in blocks]) * 5.0
        with pytest.raises(ConfigurationError):
            hybrid.failure_probability(times, bs=bs)

    def test_time_beyond_table_rejected(self, blocks):
        hybrid = HybridAnalyzer(blocks, log_t_ratio_range=(-20.0, -10.0))
        alpha_min = min(b.alpha for b in blocks)
        too_late = alpha_min * np.exp(-5.0)
        with pytest.raises(ConfigurationError):
            hybrid.failure_probability(np.array([too_late]))

    def test_time_before_table_clamps_to_zero_failure(self, blocks, hybrid):
        alpha_min = min(b.alpha for b in blocks)
        very_early = alpha_min * np.exp(-60.0)
        f = hybrid.failure_probability(np.array([very_early]))
        np.testing.assert_allclose(f, 0.0)

    def test_validation(self, blocks):
        with pytest.raises(ConfigurationError):
            HybridAnalyzer(blocks, n_alpha=1)
        with pytest.raises(ConfigurationError):
            HybridAnalyzer(blocks, log_t_ratio_range=(-1.0, -5.0))
        with pytest.raises(ConfigurationError):
            HybridAnalyzer(blocks, b_range=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            HybridAnalyzer([])
