"""Equivalence regression tests for the ``repro.kernels`` fast paths.

Every fast path must reproduce the reference implementation it replaces:
the batched ensemble/hybrid kernels to floating-point round-off, the
vectorized geometry and conductance assembly bit for bit.  Each test
evaluates the same public API with fast paths forced off (the reference
per-block/per-cell loops) and on, and compares.
"""

import numpy as np
import pytest

from repro.chip.geometry import GridSpec, Rect
from repro.core.ensemble import StFastAnalyzer, StMcAnalyzer
from repro.core.hybrid import HybridAnalyzer
from repro.errors import ConfigurationError
from repro.kernels import pad_rule_tables, use_fast_paths
from repro.thermal.grid import PackageModel
from repro.thermal.solver import (
    _build_conductance_matrix,
    _build_conductance_matrix_reference,
)


@pytest.fixture(scope="module")
def blocks(request):
    analyzer = request.getfixturevalue("small_analyzer")
    return analyzer.blocks


@pytest.fixture(scope="module")
def times(request):
    analyzer = request.getfixturevalue("small_analyzer")
    center = analyzer.lifetime(10, method="guard")
    times = np.logspace(np.log10(center) - 0.8, np.log10(center) + 1.2, 15)
    # Include the t = 0 corner the kernels special-case.
    return np.concatenate([[0.0], times])


class TestPadRuleTables:
    def test_pads_with_zero_weight(self):
        points, weights = pad_rule_tables(
            [np.array([1.0, 2.0]), np.array([5.0])],
            [np.array([0.5, 0.5]), np.array([1.0])],
        )
        np.testing.assert_array_equal(points, [[1.0, 2.0], [5.0, 5.0]])
        np.testing.assert_array_equal(weights, [[0.5, 0.5], [1.0, 0.0]])

    def test_rejects_mismatched_lists(self):
        with pytest.raises(ConfigurationError):
            pad_rule_tables([np.array([1.0])], [])
        with pytest.raises(ConfigurationError):
            pad_rule_tables([], [])


class TestEnsembleEquivalence:
    def test_st_fast_batched_matches_loop(self, blocks, times):
        analyzer = StFastAnalyzer(blocks)
        with use_fast_paths(False):
            reference = analyzer.block_failure_probabilities(times)
        with use_fast_paths(True):
            fast = analyzer.block_failure_probabilities(times)
        np.testing.assert_allclose(fast, reference, rtol=0.0, atol=1e-13)

    def test_st_mc_samples_batched_matches_loop(self, blocks, times):
        analyzer = StMcAnalyzer(blocks, n_samples=2000, seed=7)
        with use_fast_paths(False):
            reference = analyzer.block_failure_probabilities(times)
        with use_fast_paths(True):
            fast = analyzer.block_failure_probabilities(times)
        np.testing.assert_allclose(fast, reference, rtol=0.0, atol=1e-13)

    def test_st_mc_histogram_has_no_fast_path(self, blocks, times):
        analyzer = StMcAnalyzer(
            blocks, n_samples=2000, seed=7, estimator="histogram"
        )
        with use_fast_paths(False):
            reference = analyzer.block_failure_probabilities(times)
        with use_fast_paths(True):
            fast = analyzer.block_failure_probabilities(times)
        np.testing.assert_array_equal(fast, reference)


class TestHybridEquivalence:
    def test_tables_and_queries_match(self, blocks, times):
        with use_fast_paths(False):
            reference = HybridAnalyzer(blocks, n_alpha=40, n_b=40)
        with use_fast_paths(True):
            fast = HybridAnalyzer(blocks, n_alpha=40, n_b=40)
        np.testing.assert_allclose(
            fast.tables, reference.tables, rtol=0.0, atol=1e-12
        )
        alpha_min = min(block.alpha for block in blocks)
        query_times = np.concatenate(
            [[0.0], np.geomspace(1e-4 * alpha_min, 0.2 * alpha_min, 20)]
        )
        with use_fast_paths(False):
            ref_probs = reference.block_failure_probabilities(query_times)
        with use_fast_paths(True):
            fast_probs = reference.block_failure_probabilities(query_times)
        np.testing.assert_allclose(
            fast_probs, ref_probs, rtol=0.0, atol=1e-13
        )

    def test_out_of_range_error_matches(self, blocks):
        analyzer = HybridAnalyzer(blocks, n_alpha=40, n_b=40)
        alpha_max = max(block.alpha for block in blocks)
        bad = np.array([alpha_max * 2.0])
        with use_fast_paths(False):
            with pytest.raises(ConfigurationError) as ref_exc:
                analyzer.block_failure_probabilities(bad)
        with use_fast_paths(True):
            with pytest.raises(ConfigurationError) as fast_exc:
                analyzer.block_failure_probabilities(bad)
        assert str(fast_exc.value) == str(ref_exc.value)


class TestGeometryEquivalence:
    def test_overlap_fractions_bit_identical(self):
        grid = GridSpec(nx=13, ny=9, width=2.0, height=1.5)
        rng = np.random.default_rng(3)
        rects = [
            Rect(0.0, 0.0, 2.0, 1.5),  # whole die
            Rect(0.3, 0.2, 0.05, 0.04),  # interior, sub-cell
            Rect(-0.4, -0.3, 0.8, 0.6),  # straddles the die corner
            Rect(5.0, 5.0, 1.0, 1.0),  # fully off-die
        ] + [
            Rect(
                rng.uniform(-0.5, 2.0),
                rng.uniform(-0.5, 1.5),
                rng.uniform(0.01, 1.0),
                rng.uniform(0.01, 0.8),
            )
            for _ in range(50)
        ]
        for rect in rects:
            with use_fast_paths(True):
                fast = grid.overlap_fractions(rect)
            reference = grid._overlap_fractions_reference(rect)
            np.testing.assert_array_equal(fast, reference)

    def test_disabled_fast_paths_use_reference(self):
        grid = GridSpec(nx=4, ny=4, width=1.0, height=1.0)
        rect = Rect(0.1, 0.1, 0.5, 0.5)
        with use_fast_paths(False):
            off = grid.overlap_fractions(rect)
        np.testing.assert_array_equal(
            off, grid._overlap_fractions_reference(rect)
        )


class TestConductanceEquivalence:
    def test_matrix_bit_identical(self):
        grid = GridSpec(nx=11, ny=7, width=0.016, height=0.012)
        package = PackageModel()
        fast = _build_conductance_matrix(grid, package).toarray()
        reference = _build_conductance_matrix_reference(grid, package).toarray()
        np.testing.assert_array_equal(fast, reference)
