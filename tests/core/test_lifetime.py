"""Unit tests for the lifetime solvers (eq. (32))."""

import numpy as np
import pytest

from repro.core.guardband import GuardBandAnalyzer
from repro.core.lifetime import (
    failure_time_quantile,
    lifetime_at_ppm,
    lifetime_from_curve,
    ppm_to_reliability,
    solve_lifetime,
)
from repro.errors import ConfigurationError, NumericalError


class TestPpmConversion:
    def test_values(self):
        assert ppm_to_reliability(1.0) == pytest.approx(1.0 - 1e-6)
        assert ppm_to_reliability(10.0) == pytest.approx(1.0 - 1e-5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ppm_to_reliability(0.0)
        with pytest.raises(ConfigurationError):
            ppm_to_reliability(1e6)


class TestSolveLifetime:
    @pytest.fixture()
    def guard(self):
        return GuardBandAnalyzer(
            total_area=1e5, alpha_worst=1e8, b_worst=1.4, x_min=2.112
        )

    def test_matches_closed_form(self, guard):
        target = ppm_to_reliability(10.0)
        solved = solve_lifetime(guard.reliability, target, t_guess=1.0)
        assert solved == pytest.approx(guard.lifetime(target), rel=1e-9)

    def test_guess_far_above_root(self, guard):
        target = ppm_to_reliability(1.0)
        solved = solve_lifetime(guard.reliability, target, t_guess=1e12)
        assert solved == pytest.approx(guard.lifetime(target), rel=1e-9)

    def test_guess_far_below_root(self, guard):
        target = ppm_to_reliability(1.0)
        solved = solve_lifetime(guard.reliability, target, t_guess=1e-6)
        assert solved == pytest.approx(guard.lifetime(target), rel=1e-9)

    def test_lifetime_at_ppm_wrapper(self, guard):
        assert lifetime_at_ppm(guard.reliability, 10.0) == pytest.approx(
            guard.lifetime(ppm_to_reliability(10.0)), rel=1e-9
        )

    def test_unreachable_target_raises(self):
        with pytest.raises(NumericalError):
            solve_lifetime(lambda t: 1.0, 0.5, t_guess=1.0, max_expansions=10)

    def test_rejects_bad_target(self, guard):
        with pytest.raises(ConfigurationError):
            solve_lifetime(guard.reliability, 1.5)

    def test_rejects_bad_guess(self, guard):
        with pytest.raises(ConfigurationError):
            solve_lifetime(guard.reliability, 0.5, t_guess=0.0)


class TestLifetimeFromCurve:
    @pytest.fixture()
    def curve(self):
        guard = GuardBandAnalyzer(
            total_area=1e5, alpha_worst=1e8, b_worst=1.4, x_min=2.112
        )
        times = np.logspace(2.0, 6.0, 60)
        return guard, times, np.asarray(guard.reliability(times))

    def test_interpolates_accurately(self, curve):
        guard, times, rel = curve
        target = ppm_to_reliability(10.0)
        solved = lifetime_from_curve(times, rel, target)
        assert solved == pytest.approx(guard.lifetime(target), rel=0.01)

    def test_target_outside_curve_raises(self, curve):
        _guard, times, rel = curve
        with pytest.raises(NumericalError):
            lifetime_from_curve(times, rel, 1.0 - 1e-15)

    def test_monotonicity_enforced_against_noise(self, curve, rng):
        guard, times, rel = curve
        noisy = 1.0 - (1.0 - rel) * rng.uniform(0.9, 1.1, size=rel.size)
        target = ppm_to_reliability(10.0)
        solved = lifetime_from_curve(times, noisy, target)
        assert solved == pytest.approx(guard.lifetime(target), rel=0.1)

    def test_rejects_unsorted_times(self, curve):
        _guard, times, rel = curve
        with pytest.raises(ConfigurationError):
            lifetime_from_curve(times[::-1], rel, 0.99)

    def test_rejects_mismatched_shapes(self, curve):
        _guard, times, rel = curve
        with pytest.raises(ConfigurationError):
            lifetime_from_curve(times[:-1], rel, 0.99)


class TestFailureTimeQuantile:
    def test_matches_numpy_quantile(self, rng):
        samples = rng.weibull(2.0, size=2_000_000) * 1e5
        ppm = 10.0
        value = failure_time_quantile(samples, ppm)
        assert value == pytest.approx(np.quantile(samples, 1e-5), rel=1e-9)

    def test_unresolvable_quantile_raises(self, rng):
        samples = rng.weibull(2.0, size=1000)
        with pytest.raises(NumericalError):
            failure_time_quantile(samples, 1.0)

    def test_rejects_scalar(self):
        with pytest.raises(ConfigurationError):
            failure_time_quantile(np.array(5.0), 1.0)
