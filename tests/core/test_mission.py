"""Unit tests for mission-profile (time-varying condition) analysis."""

import numpy as np
import pytest

from repro.core.mission import (
    MissionAnalyzer,
    MissionProfile,
    OperatingPhase,
    mission_analyzer,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def analyzer(request):
    return request.getfixturevalue("small_analyzer")


def _uniform_profile(analyzer, temperature, vdd=None):
    return MissionProfile(
        phases=(
            OperatingPhase(
                name="only",
                fraction=1.0,
                block_temperatures=temperature,
                vdd=vdd,
            ),
        )
    )


class TestMissionProfileValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            MissionProfile(
                phases=(
                    OperatingPhase("a", 0.5, 85.0),
                    OperatingPhase("b", 0.3, 95.0),
                )
            )

    def test_unique_names(self):
        with pytest.raises(ConfigurationError, match="unique"):
            MissionProfile(
                phases=(
                    OperatingPhase("a", 0.5, 85.0),
                    OperatingPhase("a", 0.5, 95.0),
                )
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MissionProfile(phases=())

    def test_phase_fraction_range(self):
        with pytest.raises(ConfigurationError):
            OperatingPhase("a", 0.0, 85.0)
        with pytest.raises(ConfigurationError):
            OperatingPhase("a", 1.5, 85.0)

    def test_temperature_vector_shape(self, analyzer):
        phase = OperatingPhase("a", 1.0, np.array([85.0, 90.0]))
        with pytest.raises(ConfigurationError, match="block temperatures"):
            phase.temperatures_for(analyzer.floorplan.n_blocks)

    def test_scalar_temperature_broadcast(self):
        phase = OperatingPhase("a", 1.0, 85.0)
        np.testing.assert_allclose(phase.temperatures_for(3), 85.0)


class TestSinglePhaseEquivalence:
    def test_single_phase_matches_static_analysis(self, analyzer):
        """A one-phase mission at the design's own temperatures is the
        plain st_fast analysis."""
        profile = MissionProfile(
            phases=(
                OperatingPhase(
                    "static", 1.0, analyzer.block_temperatures.copy()
                ),
            )
        )
        mission = mission_analyzer(analyzer, profile)
        lt_static = analyzer.lifetime(10)
        lt_mission = mission.lifetime(10)
        assert lt_mission == pytest.approx(lt_static, rel=1e-6)

    def test_reliability_curve_matches(self, analyzer):
        profile = MissionProfile(
            phases=(
                OperatingPhase(
                    "static", 1.0, analyzer.block_temperatures.copy()
                ),
            )
        )
        mission = mission_analyzer(analyzer, profile)
        t10 = analyzer.lifetime(10)
        times = np.array([t10 / 2.0, t10, 3.0 * t10])
        np.testing.assert_allclose(
            np.asarray(mission.reliability(times)),
            np.asarray(analyzer.reliability(times)),
            rtol=1e-9,
        )


class TestDamageAccumulation:
    def test_split_identical_phases_equal_single_phase(self, analyzer):
        """Under the cumulative-exposure law, splitting one condition into
        two phases with the same condition changes nothing: the harmonic
        combination is exact."""
        temps = analyzer.block_temperatures.copy()
        single = mission_analyzer(analyzer, _uniform_profile(analyzer, temps))
        split = mission_analyzer(
            analyzer,
            MissionProfile(
                phases=(
                    OperatingPhase("a", 0.5, temps),
                    OperatingPhase("b", 0.5, temps),
                )
            ),
        )
        t10 = analyzer.lifetime(10)
        assert float(split.reliability(t10)) == pytest.approx(
            float(single.reliability(t10)), abs=1e-12
        )

    def test_hot_phase_dominates(self, analyzer):
        mild = _uniform_profile(analyzer, 75.0)
        mixed = MissionProfile(
            phases=(
                OperatingPhase("cool", 0.9, 75.0),
                OperatingPhase("hot", 0.1, 115.0),
            )
        )
        lt_mild = mission_analyzer(analyzer, mild).lifetime(10)
        lt_mixed = mission_analyzer(analyzer, mixed).lifetime(10)
        assert lt_mixed < lt_mild

    def test_more_hot_time_is_worse(self, analyzer):
        def mixed(hot_fraction):
            return MissionProfile(
                phases=(
                    OperatingPhase("cool", 1.0 - hot_fraction, 75.0),
                    OperatingPhase("hot", hot_fraction, 110.0),
                )
            )

        lifetimes = [
            mission_analyzer(analyzer, mixed(f)).lifetime(10)
            for f in (0.1, 0.3, 0.6)
        ]
        assert lifetimes[0] > lifetimes[1] > lifetimes[2]

    def test_voltage_phase(self, analyzer):
        nominal = _uniform_profile(analyzer, 90.0)
        turbo = MissionProfile(
            phases=(
                OperatingPhase("base", 0.8, 90.0),
                OperatingPhase("turbo", 0.2, 90.0, vdd=1.3),
            )
        )
        lt_nominal = mission_analyzer(analyzer, nominal).lifetime(10)
        lt_turbo = mission_analyzer(analyzer, turbo).lifetime(10)
        assert lt_turbo < lt_nominal

    def test_mission_bounded_by_constant_extremes(self, analyzer):
        """A mixed mission lies between always-cool and always-hot."""
        cool = mission_analyzer(
            analyzer, _uniform_profile(analyzer, 75.0)
        ).lifetime(10)
        hot = mission_analyzer(
            analyzer, _uniform_profile(analyzer, 110.0)
        ).lifetime(10)
        mixed = mission_analyzer(
            analyzer,
            MissionProfile(
                phases=(
                    OperatingPhase("cool", 0.5, 75.0),
                    OperatingPhase("hot", 0.5, 110.0),
                )
            ),
        ).lifetime(10)
        assert hot < mixed < cool


class TestEffectiveParams:
    def test_harmonic_alpha(self):
        from repro.core.mission import effective_block_params

        fractions = np.array([0.5, 0.5])
        alphas = np.array([[100.0], [300.0]])
        bs = np.array([[1.4], [1.4]])
        alpha_eff, b_eff = effective_block_params(fractions, alphas, bs)
        assert alpha_eff[0] == pytest.approx(150.0)  # harmonic mean
        assert b_eff[0] == pytest.approx(1.4)

    def test_b_time_weighted(self):
        from repro.core.mission import effective_block_params

        fractions = np.array([0.25, 0.75])
        alphas = np.ones((2, 1)) * 100.0
        bs = np.array([[1.0], [2.0]])
        _alpha_eff, b_eff = effective_block_params(fractions, alphas, bs)
        assert b_eff[0] == pytest.approx(1.75)

    def test_shape_checks(self):
        from repro.core.mission import effective_block_params

        with pytest.raises(ConfigurationError, match="shape"):
            effective_block_params(
                np.array([1.0]), np.ones((2, 3)), np.ones((1, 3))
            )

    def test_positive_params(self):
        from repro.core.mission import effective_block_params

        with pytest.raises(ConfigurationError, match="positive"):
            effective_block_params(
                np.array([1.0]), np.zeros((1, 3)), np.ones((1, 3))
            )


class TestMissionAnalyzerBehaviour:
    def test_block_count_mismatch_rejected(self, analyzer):
        profile = MissionProfile(
            phases=(OperatingPhase("only", 1.0, 90.0),)
        )
        n = analyzer.floorplan.n_blocks
        with pytest.raises(ConfigurationError, match="alphas must be"):
            MissionAnalyzer(
                blocks=analyzer.blocks,
                profile=profile,
                alphas=np.full((1, n + 1), 1e6),
                bs=np.full((1, n + 1), 1.4),
            )

    def test_phase_damage_shares_sum_to_one(self, analyzer):
        mission = mission_analyzer(
            analyzer,
            MissionProfile(
                phases=(
                    OperatingPhase("cool", 0.7, 75.0),
                    OperatingPhase("hot", 0.3, 110.0),
                )
            ),
        )
        shares = mission.phase_damage_shares()
        assert shares.shape == (2, analyzer.floorplan.n_blocks)
        np.testing.assert_allclose(shares.sum(axis=0), 1.0)
        # The hot phase ages every block faster than its time share.
        assert np.all(shares[1] > 0.3)

    def test_reliability_bounds(self, analyzer):
        mission = mission_analyzer(analyzer, _uniform_profile(analyzer, 95.0))
        t10 = mission.lifetime(10)
        times = np.logspace(np.log10(t10) - 1, np.log10(t10) + 2, 15)
        r = np.asarray(mission.reliability(times))
        assert np.all((0.0 <= r) & (r <= 1.0))
        assert np.all(np.diff(r) <= 1e-12)

    def test_time_zero(self, analyzer):
        mission = mission_analyzer(analyzer, _uniform_profile(analyzer, 95.0))
        assert mission.reliability(0.0) == pytest.approx(1.0)
