"""Unit tests for the Monte-Carlo reference engines."""

import logging

import numpy as np
import pytest

from repro import obs
from repro.core.montecarlo import (
    MonteCarloEngine,
    ResidualBinning,
)
from repro.errors import ConfigurationError, NumericalError
from repro.exec import ProcessBackend, SerialBackend, ThreadBackend


@pytest.fixture(scope="module")
def engine(request):
    return request.getfixturevalue("small_analyzer").mc_engine


@pytest.fixture(scope="module")
def times(request):
    analyzer = request.getfixturevalue("small_analyzer")
    center = analyzer.lifetime(10, method="st_fast")
    return np.logspace(np.log10(center) - 0.6, np.log10(center) + 0.8, 8)


class TestResidualBinning:
    def test_probabilities_sum_to_one(self):
        binning = ResidualBinning(n_bins=64, z_max=5.0)
        assert binning.probabilities.sum() == pytest.approx(1.0, abs=1e-12)
        assert binning.centers.shape == (64,)

    def test_centers_symmetric(self):
        binning = ResidualBinning(n_bins=100)
        np.testing.assert_allclose(
            binning.centers, -binning.centers[::-1], atol=1e-12
        )

    def test_moments_of_binned_normal(self):
        binning = ResidualBinning(n_bins=256, z_max=6.0)
        mean = binning.probabilities @ binning.centers
        var = binning.probabilities @ binning.centers**2
        assert mean == pytest.approx(0.0, abs=1e-12)
        assert var == pytest.approx(1.0, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResidualBinning(n_bins=2)
        with pytest.raises(ConfigurationError):
            ResidualBinning(z_max=0.0)


class TestReliabilityCurve:
    def test_curve_shape_and_monotonicity(self, engine, times, rng):
        curve = engine.reliability_curve(times, 200, rng)
        assert curve.reliability.shape == times.shape
        assert np.all((0.0 <= curve.reliability) & (curve.reliability <= 1.0))
        assert np.all(np.diff(curve.reliability) <= 1e-12)
        assert curve.n_chips == 200

    def test_std_error_shrinks_with_chips(self, engine, times):
        small = engine.reliability_curve(times, 100, np.random.default_rng(0))
        large = engine.reliability_curve(times, 800, np.random.default_rng(0))
        # Compare where failure is resolvable.
        idx = -1
        assert large.std_error[idx] < small.std_error[idx]

    def test_matches_st_fast(self, engine, times, small_analyzer, rng):
        """The paper's core accuracy claim at design scale."""
        curve = engine.reliability_curve(times, 600, rng)
        f_mc = curve.failure_probability()
        f_fast = np.asarray(small_analyzer.st_fast.failure_probability(times))
        mask = f_fast > 1e-10
        np.testing.assert_allclose(f_mc[mask], f_fast[mask], rtol=0.15)

    def test_failure_probability_complement(self, engine, times, rng):
        curve = engine.reliability_curve(times, 100, rng)
        np.testing.assert_allclose(
            curve.failure_probability(), 1.0 - curve.reliability
        )

    def test_time_zero_included(self, engine, rng):
        curve = engine.reliability_curve(np.array([0.0, 1e5]), 50, rng)
        assert curve.reliability[0] == pytest.approx(1.0)

    def test_rejects_too_few_chips(self, engine, times, rng):
        with pytest.raises(ConfigurationError):
            engine.reliability_curve(times, 1, rng)

    def test_rejects_negative_times(self, engine, rng):
        with pytest.raises(ConfigurationError):
            engine.reliability_curve(np.array([-1.0]), 10, rng)


class TestExactVsBinned:
    def test_modes_agree(self, small_analyzer, times):
        binned = MonteCarloEngine(
            small_analyzer.sampler,
            small_analyzer.blocks,
            device_mode="binned",
            chunk_size=50,
        )
        exact = MonteCarloEngine(
            small_analyzer.sampler,
            small_analyzer.blocks,
            device_mode="exact",
            chunk_size=50,
        )
        c_binned = binned.reliability_curve(
            times, 400, np.random.default_rng(3)
        )
        c_exact = exact.reliability_curve(times, 400, np.random.default_rng(3))
        f_b = c_binned.failure_probability()
        f_e = c_exact.failure_probability()
        mask = f_e > 1e-10
        np.testing.assert_allclose(f_b[mask], f_e[mask], rtol=0.25)

    def test_unknown_mode_rejected(self, small_analyzer):
        with pytest.raises(ConfigurationError):
            MonteCarloEngine(
                small_analyzer.sampler,
                small_analyzer.blocks,
                device_mode="quantum",
            )

    def test_block_order_mismatch_rejected(self, small_analyzer):
        with pytest.raises(ConfigurationError):
            MonteCarloEngine(
                small_analyzer.sampler, small_analyzer.blocks[::-1]
            )


class TestNonFiniteRecovery:
    """A pathological chunk must be survived, not silently poisoned."""

    @pytest.fixture()
    def engine(self, request):
        # Monkeypatched kernels cannot cross a process boundary, so these
        # tests always run the shard tasks in-process.
        analyzer = request.getfixturevalue("small_analyzer")
        return MonteCarloEngine(
            analyzer.sampler,
            analyzer.blocks,
            device_mode=analyzer.config.mc_device_mode,
            chunk_size=analyzer.config.mc_chunk_size,
            backend=SerialBackend(),
        )

    @staticmethod
    def _poison_first_chunk(monkeypatch, engine, bad_rows):
        """Make the first chunk's first ``len(bad_rows)`` chips non-finite."""
        original = MonteCarloEngine._chunk_exponents
        state = {"first": True}

        def poisoned(self, times, n_chips, rng):
            exponents = original(self, times, n_chips, rng)
            if state["first"]:
                state["first"] = False
                for row, value in zip(range(exponents.shape[0]), bad_rows, strict=False):
                    exponents[row, 0] = value
            return exponents

        monkeypatch.setattr(MonteCarloEngine, "_chunk_exponents", poisoned)

    def test_partial_curve_from_valid_chips(
        self, engine, times, rng, monkeypatch, caplog
    ):
        self._poison_first_chunk(monkeypatch, engine, [np.nan, np.inf])
        with obs.enabled(), caplog.at_level(
            logging.WARNING, logger="repro.core.montecarlo"
        ):
            curve = engine.reliability_curve(times, 120, rng)
            assert obs.get_counter("mc.nonfinite_chunks") == 1.0
            assert obs.get_counter("mc.nonfinite_chips") == 2.0
        assert curve.n_chips == 118
        assert np.all(np.isfinite(curve.reliability))
        assert np.all((0.0 <= curve.reliability) & (curve.reliability <= 1.0))
        assert any(
            "dropping 2 of" in record.getMessage()
            for record in caplog.records
        )

    def test_close_to_clean_estimate(self, engine, times, monkeypatch):
        clean = engine.reliability_curve(times, 400, np.random.default_rng(9))
        self._poison_first_chunk(monkeypatch, engine, [np.nan])
        partial = engine.reliability_curve(
            times, 400, np.random.default_rng(9)
        )
        assert partial.n_chips == 399
        np.testing.assert_allclose(
            partial.reliability, clean.reliability, atol=0.05
        )

    def test_all_invalid_raises(self, engine, times, rng, monkeypatch):
        monkeypatch.setattr(
            MonteCarloEngine,
            "_chunk_exponents",
            lambda self, t, n, r: np.full((n, np.size(t)), np.nan),
        )
        with pytest.raises(NumericalError, match="non-finite"):
            engine.reliability_curve(times, 100, rng)


class TestFailureTimes:
    def test_all_positive_finite(self, engine, rng):
        ft = engine.failure_times(300, rng)
        assert ft.shape == (300,)
        assert np.all(ft > 0.0)
        assert np.all(np.isfinite(ft))

    def test_quantiles_match_reliability_curve(self, engine, rng):
        """Weakest-link sampling and conditional-reliability averaging are
        two estimators of the same distribution."""
        ft = engine.failure_times(3000, rng)
        for q in (0.05, 0.25, 0.5):
            t_q = float(np.quantile(ft, q))
            curve = engine.reliability_curve(
                np.array([t_q]), 400, np.random.default_rng(17)
            )
            assert 1.0 - curve.reliability[0] == pytest.approx(q, abs=0.05)

    def test_exact_mode_agrees(self, small_analyzer, rng):
        exact = MonteCarloEngine(
            small_analyzer.sampler,
            small_analyzer.blocks,
            device_mode="exact",
            chunk_size=50,
        )
        ft_binned = small_analyzer.mc_engine.failure_times(
            1500, np.random.default_rng(5)
        )
        ft_exact = exact.failure_times(1500, np.random.default_rng(6))
        assert np.median(ft_exact) == pytest.approx(
            np.median(ft_binned), rel=0.1
        )

    def test_rejects_zero_chips(self, engine, rng):
        with pytest.raises(ConfigurationError):
            engine.failure_times(0, rng)


def _variant(engine, **overrides):
    """A sibling engine sharing the model but with scheduling overrides."""
    kwargs = dict(
        sampler=engine.sampler,
        blocks=engine.blocks,
        device_mode=engine.device_mode,
        binning=engine.binning,
        chunk_size=engine.chunk_size,
        shard_size=engine.shard_size,
        backend=SerialBackend(),
    )
    kwargs.update(overrides)
    return MonteCarloEngine(**kwargs)


class TestDeterminism:
    """Results are a function of the seed alone, never of scheduling."""

    def test_chunk_size_does_not_change_curve(self, engine, times):
        curves = [
            _variant(engine, chunk_size=size).reliability_curve(times, 300, 7)
            for size in (17, 100, 1000)
        ]
        for other in curves[1:]:
            np.testing.assert_array_equal(
                curves[0].reliability, other.reliability
            )
            np.testing.assert_array_equal(curves[0].std_error, other.std_error)

    def test_chunk_size_does_not_change_failure_times(self, engine):
        a = _variant(engine, chunk_size=33).failure_times(200, 11)
        b = _variant(engine, chunk_size=640).failure_times(200, 11)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
    def test_backends_bit_identical(self, engine, times, cls):
        serial = _variant(engine).reliability_curve(times, 200, 3)
        backend = cls(2)
        try:
            parallel = _variant(engine, backend=backend).reliability_curve(
                times, 200, 3
            )
        finally:
            backend.close()
        np.testing.assert_array_equal(serial.reliability, parallel.reliability)
        np.testing.assert_array_equal(serial.std_error, parallel.std_error)
        np.testing.assert_array_equal(serial.n_chips, parallel.n_chips)

    def test_shard_size_defines_the_stream(self, engine, times):
        a = _variant(engine, shard_size=32).reliability_curve(times, 200, 5)
        b = _variant(engine, shard_size=64).reliability_curve(times, 200, 5)
        assert not np.array_equal(a.reliability, b.reliability)

    def test_seed_sequence_matches_int_seed(self, engine, times):
        a = _variant(engine).reliability_curve(times, 100, 9)
        b = _variant(engine).reliability_curve(
            times, 100, np.random.SeedSequence(9)
        )
        np.testing.assert_array_equal(a.reliability, b.reliability)


class TestCheckpointResume:
    """A killed run resumed from its checkpoint matches an unbroken one."""

    def test_killed_curve_resumes_bit_identical(self, engine, times, tmp_path):
        path = tmp_path / "mc.ckpt.npz"
        baseline = _variant(engine, chunk_size=16, shard_size=16).reliability_curve(
            times, 96, 5
        )

        broken = _variant(engine, chunk_size=16, shard_size=16)
        real = broken._chunk_exponents
        calls = {"n": 0}

        def dying(chunk_times, n_chips, rng):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt
            return real(chunk_times, n_chips, rng)

        broken._chunk_exponents = dying
        with pytest.raises(KeyboardInterrupt):
            broken.reliability_curve(
                times, 96, 5, checkpoint_path=path, checkpoint_every=1
            )
        assert path.exists()

        resumed_engine = _variant(engine, chunk_size=16, shard_size=16)
        with obs.enabled():
            resumed = resumed_engine.reliability_curve(
                times, 96, 5, checkpoint_path=path, checkpoint_every=1
            )
            assert obs.get_counter("exec.checkpoint.resumed_shards") >= 1.0
        np.testing.assert_array_equal(resumed.reliability, baseline.reliability)
        np.testing.assert_array_equal(resumed.std_error, baseline.std_error)
        assert not path.exists()  # cleared once the run completes

    def test_killed_failure_times_resume_bit_identical(self, engine, tmp_path):
        path = tmp_path / "ft.ckpt.npz"
        baseline = _variant(engine, chunk_size=16, shard_size=16).failure_times(80, 21)

        broken = _variant(engine, chunk_size=16, shard_size=16)
        real = broken._chunk_failure_times_binned
        calls = {"n": 0}

        def dying(n_chips, rng):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt
            return real(n_chips, rng)

        broken._chunk_failure_times_binned = dying
        with pytest.raises(KeyboardInterrupt):
            broken.failure_times(
                80, 21, checkpoint_path=path, checkpoint_every=1
            )
        assert path.exists()

        resumed = _variant(engine, chunk_size=16, shard_size=16).failure_times(
            80, 21, checkpoint_path=path, checkpoint_every=1
        )
        np.testing.assert_array_equal(resumed, baseline)

    def test_stale_checkpoint_rejected_on_seed_change(self, engine, tmp_path):
        """A checkpoint for one seed must not resurrect into another run."""
        path = tmp_path / "stale.ckpt.npz"
        broken = _variant(engine, chunk_size=16, shard_size=16)
        real = broken._chunk_failure_times_binned
        calls = {"n": 0}

        def dying(n_chips, rng):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt
            return real(n_chips, rng)

        broken._chunk_failure_times_binned = dying
        with pytest.raises(KeyboardInterrupt):
            broken.failure_times(
                80, 21, checkpoint_path=path, checkpoint_every=1
            )

        fresh = _variant(engine, chunk_size=16, shard_size=16).failure_times(
            80, 22, checkpoint_path=path, checkpoint_every=1
        )
        baseline = _variant(engine, chunk_size=16, shard_size=16).failure_times(80, 22)
        np.testing.assert_array_equal(fresh, baseline)
