"""Unit tests for the device-level OBD model."""

import numpy as np
import pytest

from repro.core.obd_model import (
    DeviceReliabilityParams,
    OBDModel,
    TabulatedOBDModel,
)
from repro.errors import ConfigurationError


class TestDeviceReliabilityParams:
    def test_beta_linear_in_thickness(self):
        params = DeviceReliabilityParams(alpha=1e8, b=1.4)
        assert params.beta(2.2) == pytest.approx(1.4 * 2.2)
        assert params.beta(2.0) == pytest.approx(2.8)

    def test_weibull_law_construction(self):
        params = DeviceReliabilityParams(alpha=1e8, b=1.4)
        law = params.weibull(thickness=2.2, area=3.0)
        assert law.alpha == 1e8
        assert law.beta == pytest.approx(3.08)
        assert law.area == 3.0

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            DeviceReliabilityParams(alpha=0.0, b=1.0)
        with pytest.raises(ConfigurationError):
            DeviceReliabilityParams(alpha=1.0, b=-1.0)


class TestOBDModel:
    def test_reference_point(self, obd_model):
        assert obd_model.alpha(obd_model.t_ref) == pytest.approx(
            obd_model.alpha_ref
        )
        assert obd_model.b(obd_model.t_ref) == pytest.approx(obd_model.b_ref)

    def test_hotter_is_less_reliable(self, obd_model):
        assert obd_model.alpha(120.0) < obd_model.alpha(100.0)
        assert obd_model.alpha(100.0) < obd_model.alpha(70.0)

    def test_arrhenius_form(self, obd_model):
        # ln(alpha) is linear in 1/T.
        from repro.units import BOLTZMANN_EV, celsius_to_kelvin

        t1, t2 = 80.0, 110.0
        ratio = obd_model.alpha(t1) / obd_model.alpha(t2)
        expected = np.exp(
            obd_model.activation_energy
            / BOLTZMANN_EV
            * (1.0 / celsius_to_kelvin(t1) - 1.0 / celsius_to_kelvin(t2))
        )
        assert ratio == pytest.approx(expected, rel=1e-10)

    def test_meaningful_acceleration_over_30c(self, obd_model):
        # A hot-spot/inactive-region temperature difference of ~30 degC
        # costs a multiple of the characteristic life.
        acceleration = obd_model.lifetime_acceleration(hot=100.0, cool=70.0)
        assert 2.0 < acceleration < 20.0

    def test_voltage_acceleration(self, obd_model):
        assert obd_model.alpha(100.0, vdd=1.3) < obd_model.alpha(100.0, vdd=1.2)
        # Stress voltages shorten life by many orders of magnitude.
        assert obd_model.alpha(100.0, vdd=3.1) < obd_model.alpha(100.0) * 1e-8

    def test_voltage_temperature_interplay(self, obd_model):
        # Higher voltage lowers the effective activation energy (Wu).
        ea_nom = obd_model.effective_activation_energy(1.2)
        ea_high = obd_model.effective_activation_energy(1.5)
        assert ea_high < ea_nom

    def test_ea_clamped_at_extreme_voltage(self, obd_model):
        assert obd_model.effective_activation_energy(10.0) == pytest.approx(0.05)

    def test_b_decreases_with_temperature(self, obd_model):
        assert obd_model.b(125.0) < obd_model.b(75.0)

    def test_b_out_of_range_raises(self, obd_model):
        with pytest.raises(ConfigurationError):
            obd_model.b(100.0 + 2.0 / abs(obd_model.b_temp_slope))

    def test_block_params_list(self, obd_model):
        temps = np.array([70.0, 85.0, 100.0])
        params = obd_model.block_params(temps)
        assert len(params) == 3
        assert params[0].alpha > params[1].alpha > params[2].alpha

    def test_invalid_vdd(self, obd_model):
        with pytest.raises(ConfigurationError):
            obd_model.alpha(100.0, vdd=0.0)

    def test_invalid_temperature(self, obd_model):
        with pytest.raises(ValueError):
            obd_model.alpha(-300.0)

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            OBDModel(alpha_ref=0.0)
        with pytest.raises(ConfigurationError):
            OBDModel(b_ref=-1.0)
        with pytest.raises(ConfigurationError):
            OBDModel(activation_energy=0.0)


class TestTabulatedOBDModel:
    @pytest.fixture()
    def table(self, obd_model):
        temps = np.linspace(40.0, 130.0, 10)
        return TabulatedOBDModel.from_model(obd_model, temps)

    def test_round_trip_at_table_points(self, table, obd_model):
        assert table.alpha(70.0) == pytest.approx(obd_model.alpha(70.0), rel=1e-10)
        assert table.b(70.0) == pytest.approx(obd_model.b(70.0), rel=1e-10)

    def test_interpolation_between_points(self, table, obd_model):
        # Log-linear interpolation of an Arrhenius law in celsius is not
        # exact but very close over a 10 degC spacing.
        assert table.alpha(87.3) == pytest.approx(obd_model.alpha(87.3), rel=0.01)
        assert table.b(87.3) == pytest.approx(obd_model.b(87.3), rel=1e-6)

    def test_monotone_alpha(self, table):
        temps = np.linspace(40.0, 130.0, 50)
        alphas = [table.alpha(float(t)) for t in temps]
        assert np.all(np.diff(alphas) < 0.0)

    def test_out_of_range_raises(self, table):
        with pytest.raises(ConfigurationError):
            table.alpha(30.0)
        with pytest.raises(ConfigurationError):
            table.b(140.0)

    def test_block_params(self, table):
        params = table.block_params(np.array([50.0, 100.0]))
        assert params[0].alpha > params[1].alpha

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TabulatedOBDModel(
                np.array([1.0]), np.array([1.0]), np.array([1.0])
            )
        with pytest.raises(ConfigurationError):
            TabulatedOBDModel(
                np.array([2.0, 1.0]),
                np.array([1.0, 1.0]),
                np.array([1.0, 1.0]),
            )
        with pytest.raises(ConfigurationError):
            TabulatedOBDModel(
                np.array([1.0, 2.0]),
                np.array([1.0, -1.0]),
                np.array([1.0, 1.0]),
            )
