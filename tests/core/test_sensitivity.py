"""Unit tests for the sensitivity (tornado) analysis."""

import numpy as np
import pytest

from repro.core.sensitivity import (
    PARAMETERS,
    SensitivityResult,
    lifetime_sensitivities,
    tornado_text,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def results(request):
    analyzer = request.getfixturevalue("small_analyzer")
    return lifetime_sensitivities(analyzer, ppm=10.0)


class TestLifetimeSensitivities:
    def test_covers_all_parameters(self, results):
        assert {r.parameter for r in results} == set(PARAMETERS)

    def test_sorted_by_magnitude(self, results):
        magnitudes = [r.magnitude for r in results]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_vdd_dominates_and_is_negative(self, results):
        """Voltage is by far the strongest lifetime knob (exponential
        acceleration), and raising it shortens life."""
        by_name = {r.parameter: r for r in results}
        vdd = by_name["vdd"]
        assert vdd.elasticity < 0.0
        assert vdd.magnitude == max(r.magnitude for r in results)

    def test_temperature_margin_negative(self, results):
        by_name = {r.parameter: r for r in results}
        assert by_name["temperature_margin"].elasticity < 0.0

    def test_more_variation_is_worse(self, results):
        by_name = {r.parameter: r for r in results}
        assert by_name["three_sigma_ratio"].elasticity < 0.0

    def test_low_high_bracket_base(self, results, small_analyzer):
        base = small_analyzer.lifetime(10)
        for r in results:
            lo, hi = sorted((r.lifetime_low, r.lifetime_high))
            assert lo <= base * 1.001
            assert hi >= base * 0.999

    def test_subset_of_parameters(self, small_analyzer):
        subset = lifetime_sensitivities(
            small_analyzer, ppm=10.0, parameters=("vdd",)
        )
        assert len(subset) == 1
        assert subset[0].parameter == "vdd"

    def test_unknown_parameter_rejected(self, small_analyzer):
        with pytest.raises(ConfigurationError):
            lifetime_sensitivities(
                small_analyzer, parameters=("phase_of_moon",)
            )

    def test_bad_step_rejected(self, small_analyzer):
        with pytest.raises(ConfigurationError):
            lifetime_sensitivities(small_analyzer, relative_step=0.9)


class TestTornadoText:
    def test_renders_all_rows(self, results):
        text = tornado_text(results)
        for r in results:
            assert r.parameter in text

    def test_sign_encoded_in_bar(self):
        results = [
            SensitivityResult("up", 1.0, +2.0, 1.0, 3.0),
            SensitivityResult("down", 1.0, -1.0, 2.0, 1.0),
        ]
        text = tornado_text(results)
        lines = text.splitlines()
        assert "+" in lines[0]
        assert "-" in lines[1]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tornado_text([])
