"""Edge-case tests for the eq. (28) survival-grid evaluation.

``_survival_on_grid`` is the reference integrand behind the st_fast and
st_mc analyzers (and the contract the batched kernels must reproduce):
``t = 0`` maps to survival exactly 1, and the double-exponential is
clipped to ``[_EXP_MIN, _EXP_MAX]`` so extreme Weibull scalings saturate
at exactly 0/1 instead of overflowing.
"""

import numpy as np

from repro.core.closed_form import _EXP_MAX, _EXP_MIN
from repro.core.ensemble import _survival_on_grid


def _grid(log_t_ratio, b=2.0, area=1e-4):
    u = np.array([0.5, 1.0, 2.0])
    v = np.array([0.01, 0.05])
    return _survival_on_grid(np.asarray(log_t_ratio, float), b, area, u, v)


class TestTimeZero:
    def test_neg_inf_log_ratio_survives_exactly(self):
        survival = _grid([-np.inf, 0.0])
        np.testing.assert_array_equal(survival[0], 1.0)

    def test_no_nan_from_inf_times_zero_node(self):
        # -inf * u would be nan for u = 0; the masked path avoids it.
        survival = _survival_on_grid(
            np.array([-np.inf]), 2.0, 1e-4,
            np.array([0.0, 1.0]), np.array([0.0, 0.1]),
        )
        assert np.all(np.isfinite(survival))
        np.testing.assert_array_equal(survival, 1.0)


class TestClipping:
    def test_exp_max_saturates_to_zero_failure(self):
        # b * log ratio huge: exponent would overflow exp() without the
        # _EXP_MAX clip; clipped, survival is exactly 0.
        with np.errstate(over="raise"):
            survival = _grid([2.0 * _EXP_MAX])
        np.testing.assert_array_equal(survival, 0.0)

    def test_exp_min_saturates_to_one(self):
        # Far below _EXP_MIN (v = 0 so the quadratic term cannot flip the
        # sign) the inner exponential underflows and exp(-tiny) rounds to
        # exactly 1.
        survival = _survival_on_grid(
            np.array([2.0 * _EXP_MIN]), 1.0, 1.0,
            np.array([0.5, 1.0]), np.array([0.0]),
        )
        np.testing.assert_array_equal(survival, 1.0)

    def test_clip_boundary_is_finite(self):
        for ratio in (_EXP_MIN, _EXP_MAX, _EXP_MIN - 1.0, _EXP_MAX + 1.0):
            survival = _grid([ratio], b=1.0, area=1.0)
            assert np.all(np.isfinite(survival))
            assert np.all((survival >= 0.0) & (survival <= 1.0))


class TestMonotonicity:
    def test_survival_non_increasing_in_time(self):
        # For positive (u, v) nodes and t >= alpha (non-negative scaled
        # log ratio) the conditional survival decreases with time.
        log_t_ratio = np.linspace(0.0, 6.0, 50)
        survival = _grid(log_t_ratio)
        assert np.all(np.diff(survival, axis=0) <= 0.0)

    def test_survival_stays_in_unit_interval(self):
        log_t_ratio = np.linspace(-30.0, 30.0, 121)
        survival = _grid(log_t_ratio)
        assert np.all((survival >= 0.0) & (survival <= 1.0))
