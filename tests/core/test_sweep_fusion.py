"""Bit-identity tests for the fused temperature-axis sweep kernel.

``sweep_reliabilities`` fuses several same-design ensemble grids into one
kernel dispatch.  The contract is strict: either the fused result is
**bitwise identical** to evaluating each analyzer separately, or the
function returns ``None`` and the caller dispatches per analyzer.  These
tests pin both halves — exact equality on the fusable shapes, and every
documented decline condition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AnalysisConfig, ReliabilityAnalyzer
from repro.core.ensemble import sweep_reliabilities
from repro.errors import ConfigurationError
from repro.kernels import use_fast_paths
from repro.kernels.survival import sweep_rule_expectations

TEMPS = (40.0, 60.0, 80.0, 100.0)


@pytest.fixture(scope="module")
def temp_analyzers(request):
    """One analyzer per uniform temperature, sharing BLOD tables."""
    floorplan = request.getfixturevalue("small_floorplan")
    config = request.getfixturevalue("fast_config")
    out = []
    for temp in TEMPS:
        out.append(
            ReliabilityAnalyzer(
                floorplan,
                config=config,
                block_temperatures=np.full(floorplan.n_blocks, temp),
            )
        )
    return out


@pytest.fixture(scope="module")
def times(request):
    analyzer = request.getfixturevalue("small_analyzer")
    center = analyzer.lifetime(10.0, method="guard")
    return np.geomspace(center / 20.0, 20.0 * center, 8)


class TestBitIdentity:
    @pytest.mark.parametrize("attr", ["st_fast", "temp_unaware"])
    def test_equal_length_grids(self, temp_analyzers, times, attr):
        subs = [getattr(a, attr) for a in temp_analyzers]
        fused = sweep_reliabilities(subs, [times] * len(subs))
        assert fused is not None
        for sub, values in zip(subs, fused, strict=True):
            reference = sub.reliability(times)
            assert np.array_equal(values, reference)  # bitwise, not approx

    def test_scalar_rungs(self, temp_analyzers, times):
        """The batch ladder shape: one probe time per analyzer."""
        subs = [a.st_fast for a in temp_analyzers]
        probes = [float(t) for t in times[: len(subs)]]
        fused = sweep_reliabilities(subs, probes)
        assert fused is not None
        for sub, probe, values in zip(subs, probes, fused, strict=True):
            assert values.shape == (1,)
            assert values[0] == sub.reliability(np.asarray([probe]))[0]

    def test_mixed_length_grids(self, temp_analyzers, times):
        subs = [a.st_fast for a in temp_analyzers]
        times_list = [times[: 2 + k] for k in range(len(subs))]
        fused = sweep_reliabilities(subs, times_list)
        assert fused is not None
        for sub, ts, values in zip(subs, times_list, fused, strict=True):
            assert np.array_equal(values, sub.reliability(ts))

    def test_zero_time_column_exact(self, temp_analyzers):
        subs = [a.st_fast for a in temp_analyzers]
        fused = sweep_reliabilities(subs, [np.array([0.0, 1e4])] * len(subs))
        assert fused is not None
        for values in fused:
            assert values[0] == 1.0


class TestDeclines:
    def test_empty_and_mismatched_inputs(self, temp_analyzers, times):
        subs = [a.st_fast for a in temp_analyzers]
        assert sweep_reliabilities([], []) is None
        assert sweep_reliabilities(subs, [times]) is None

    def test_fast_paths_off(self, temp_analyzers, times):
        subs = [a.st_fast for a in temp_analyzers]
        with use_fast_paths(False):
            assert sweep_reliabilities(subs, [times] * len(subs)) is None

    def test_mismatched_quadrature_tables(
        self, small_floorplan, temp_analyzers, times
    ):
        other = ReliabilityAnalyzer(
            small_floorplan,
            config=AnalysisConfig(grid_size=8),
            block_temperatures=np.full(small_floorplan.n_blocks, TEMPS[0]),
        )
        subs = [temp_analyzers[0].st_fast, other.st_fast]
        assert sweep_reliabilities(subs, [times, times]) is None

    def test_oversized_grid_declines(self, temp_analyzers):
        """Fusion requires the concatenated axis to fit one chunk."""
        subs = [a.st_fast for a in temp_analyzers]
        big = np.geomspace(1e2, 1e8, 5000)
        assert sweep_reliabilities(subs, [big] * len(subs)) is None
        # ... and the per-analyzer fallback still agrees with itself.
        assert subs[0].reliability(big).shape == big.shape

    def test_negative_times_rejected(self, temp_analyzers):
        subs = [a.st_fast for a in temp_analyzers]
        with pytest.raises(ConfigurationError, match="non-negative"):
            sweep_reliabilities(subs, [np.array([-1.0, 1.0])] * len(subs))


class TestSweepRuleExpectations:
    def test_empty_profile_list(self, temp_analyzers):
        base = temp_analyzers[0].st_fast
        assert (
            sweep_rule_expectations(
                [],
                base._log_areas,
                base._u_points,
                base._u_weights,
                base._v_points,
                base._v_weights,
            )
            == []
        )

    def test_shape_validation(self, temp_analyzers):
        base = temp_analyzers[0].st_fast
        n_blocks = base._log_areas.shape[0]
        good = np.zeros((n_blocks, 2), dtype=np.float64)
        bad = np.zeros((n_blocks + 1, 2), dtype=np.float64)
        with pytest.raises(ConfigurationError, match="shape"):
            sweep_rule_expectations(
                [good, bad],
                base._log_areas,
                base._u_points,
                base._u_weights,
                base._v_points,
                base._v_weights,
            )

    def test_overflow_prone_profile_declines(self, temp_analyzers):
        """A profile that would overflow the separable exp branch."""
        base = temp_analyzers[0].st_fast
        n_blocks = base._log_areas.shape[0]
        hot = np.full((n_blocks, 2), 1e6, dtype=np.float64)
        assert (
            sweep_rule_expectations(
                [hot],
                base._log_areas,
                base._u_points,
                base._u_weights,
                base._v_points,
                base._v_weights,
            )
            is None
        )
