"""Unit tests for supply-voltage screening."""

import pytest

from repro.core.voltage import (
    VoltageScreeningResult,
    max_vdd_for_target,
    voltage_headroom,
)
from repro.errors import ConfigurationError, NumericalError
from repro.units import years_to_hours


@pytest.fixture(scope="module")
def analyzer(request):
    return request.getfixturevalue("small_analyzer")


class TestMaxVddForTarget:
    def test_solution_meets_target_exactly(self, analyzer):
        target = years_to_hours(10.0)
        result = max_vdd_for_target(analyzer, target, ppm=10.0)
        assert 0.9 < result.max_vdd < 2.0
        # At the found voltage the lifetime equals the target (within the
        # solver tolerance mapped through the local slope).
        import dataclasses

        from repro import ReliabilityAnalyzer

        probe = ReliabilityAnalyzer(
            analyzer.floorplan,
            budget=analyzer.budget,
            obd_model=analyzer.obd_model,
            config=dataclasses.replace(analyzer.config, vdd=result.max_vdd),
            block_temperatures=analyzer.block_temperatures,
        )
        assert probe.lifetime(10.0) == pytest.approx(target, rel=0.01)

    def test_stricter_target_lower_vdd(self, analyzer):
        loose = max_vdd_for_target(analyzer, years_to_hours(5.0))
        strict = max_vdd_for_target(analyzer, years_to_hours(20.0))
        assert strict.max_vdd < loose.max_vdd

    def test_statistical_beats_guard(self, analyzer):
        target = years_to_hours(10.0)
        stat = max_vdd_for_target(analyzer, target, method="st_fast")
        guard = max_vdd_for_target(analyzer, target, method="guard")
        assert stat.max_vdd > guard.max_vdd

    def test_unreachable_target_raises(self, analyzer):
        with pytest.raises(NumericalError, match="not met"):
            max_vdd_for_target(
                analyzer, years_to_hours(1e6), vdd_range=(1.0, 2.0)
            )

    def test_range_too_low_raises(self, analyzer):
        with pytest.raises(NumericalError, match="widen"):
            max_vdd_for_target(
                analyzer, years_to_hours(1e-5), vdd_range=(1.0, 1.1)
            )

    def test_validation(self, analyzer):
        with pytest.raises(ConfigurationError):
            max_vdd_for_target(analyzer, -1.0)
        with pytest.raises(ConfigurationError):
            max_vdd_for_target(
                analyzer, 1e5, vdd_range=(2.0, 1.0)
            )


class TestVoltageHeadroom:
    def test_headroom_positive(self, analyzer):
        results = voltage_headroom(analyzer, years_to_hours(10.0))
        headroom = results["st_fast"].max_vdd - results["guard"].max_vdd
        assert headroom > 0.005  # at least ~5 mV reclaimed

    def test_frequency_value(self, analyzer):
        results = voltage_headroom(analyzer, years_to_hours(10.0))
        f_stat = results["st_fast"].relative_frequency()
        f_guard = results["guard"].relative_frequency()
        assert f_stat > f_guard


class TestResultObject:
    def test_relative_frequency_monotone_in_vdd(self):
        low = VoltageScreeningResult("x", 1.1, 1e5, 10.0)
        high = VoltageScreeningResult("x", 1.3, 1e5, 10.0)
        assert high.relative_frequency() > low.relative_frequency()

    def test_below_threshold_rejected(self):
        result = VoltageScreeningResult("x", 0.3, 1e5, 10.0)
        with pytest.raises(ConfigurationError):
            result.relative_frequency(vth=0.35)
