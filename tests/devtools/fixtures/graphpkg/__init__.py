"""Fixture package exercising the project indexer.

Re-exports ``helper`` so resolution through ``__init__`` is covered.
"""

from graphpkg.util import helper

__all__ = ["helper"]
