"""Relative imports, attribute-type chains and locked call sites."""

import threading

from ..util import helper as h


class Store:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.items: dict = {}

    def add(self, key: str) -> None:
        self.items[key] = h()

    def locked_add(self, key: str) -> None:
        with self._lock:
            self.add(key)


class Engine:
    def __init__(self, store: Store) -> None:
        self.store = store

    def run(self) -> None:
        self.store.add("x")

    def make_store(self) -> Store:
        return Store()

    def indirect(self) -> None:
        fresh = self.make_store()
        fresh.add("y")
