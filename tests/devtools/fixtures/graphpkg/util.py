"""Leaf helpers: aliased numpy import and a plain function."""

import numpy as np


def helper() -> float:
    return 1.0


def noisy() -> float:
    return float(np.random.rand())
