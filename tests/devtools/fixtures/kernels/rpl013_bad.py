"""RPL013 violations: kernel allocations with implicit platform dtypes."""

import numpy as np
from numpy import zeros as zeros_alias


def build_tables(n: int) -> tuple:
    out = np.empty((n, 4))  # implicit float64
    grid = zeros_alias(n)  # from-import alias, still no dtype
    steps = np.arange(n)  # implicit platform int
    axis = np.linspace(0.0, 1.0, n)  # implicit float64
    scaled = out.astype(float)  # builtin pins the platform default
    packed = grid.astype("f8")  # dtype string hides the width
    return scaled, packed, steps, axis
