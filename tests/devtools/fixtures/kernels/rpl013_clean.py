"""RPL013-clean: every kernel allocation pins its dtype explicitly."""

import numpy as np


def build_tables(n: int, dtype: np.dtype) -> tuple:
    out = np.empty((n, 4), dtype=np.float64)
    grid = np.zeros(n, dtype=dtype)
    steps = np.arange(n, dtype=np.int64)
    axis = np.linspace(0.0, 1.0, n, dtype=np.float32)
    filled = np.full((n,), 1.0, np.float64)  # positional dtype is explicit
    scaled = out.astype(dtype=np.float32, copy=False)
    cast = grid.astype(dtype, copy=False)  # a real dtype object flows in
    return steps, axis, filled, scaled, cast
