"""Violating fixture for RPL014: bare stress constants in a mechanism."""


class LeakyMechanism:
    """A mechanism plugin whose stress parameters carry no units."""

    name = "leaky"

    t_ref_c = 100.0
    v_ref_v: float = 1.2
    activation_energy_ev = 0.58
    delta_temp_c = -10.0
    weibull_shape = 2.0
