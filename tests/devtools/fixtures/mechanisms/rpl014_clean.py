"""Clean fixture for RPL014: stress constants declare their units."""

from repro.units import celsius, electron_volts, volts


class TidyMechanism:
    """Stress parameters wrapped in the repro.units helpers."""

    name = "tidy"

    t_ref_c = celsius(100.0)
    v_ref_v: float = volts(1.2)
    activation_energy_ev = electron_volts(0.58)
    # Dimensionless modifiers are exempt: they scale a unit-bearing
    # quantity but carry no unit of their own.
    voltage_exponent = 2.2
    b_temp_slope = -6.0e-4
    weibull_shape = 2.0
