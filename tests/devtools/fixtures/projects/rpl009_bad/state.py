"""Bad: module registry written from two thread roots without the lock."""

import threading
from http.server import BaseHTTPRequestHandler

_lock = threading.Lock()
_REGISTRY: dict = {}


class Handler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:
        _REGISTRY["last"] = "get"


def worker() -> None:
    _REGISTRY.clear()


def serve() -> None:
    thread = threading.Thread(target=worker)
    thread.start()
