"""Clean: every registry write holds the module lock."""

import threading
from http.server import BaseHTTPRequestHandler

_lock = threading.Lock()
_REGISTRY: dict = {}


class Handler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:
        with _lock:
            _REGISTRY["last"] = "get"


def worker() -> None:
    with _lock:
        _REGISTRY.clear()


def serve() -> None:
    thread = threading.Thread(target=worker)
    thread.start()
