"""Bad: a handler reaches time.sleep through two helper frames."""

import time
from http.server import BaseHTTPRequestHandler


def wait_for_slot() -> None:
    time.sleep(0.1)


def enqueue() -> None:
    wait_for_slot()


class Handler(BaseHTTPRequestHandler):
    def do_POST(self) -> None:
        enqueue()
