"""Clean: the handler only enqueues; the sleep lives on a worker thread."""

import queue
import threading
import time
from http.server import BaseHTTPRequestHandler

_queue: queue.Queue = queue.Queue()


def enqueue() -> None:
    _queue.put("job")


def worker_loop() -> None:
    while True:
        _queue.get()
        time.sleep(0.1)


def serve() -> None:
    thread = threading.Thread(target=worker_loop)
    thread.start()


class Handler(BaseHTTPRequestHandler):
    def do_POST(self) -> None:
        enqueue()
