"""Bad: the shard task draws from np.random and a module singleton."""

import numpy as np

_RNG = np.random.default_rng(1234)


def run_sharded(backend, task, shards):
    return [task(shard) for shard in shards]


def noisy_helper() -> float:
    return float(np.random.rand())


def mc_shard_task(shard) -> float:
    sample = float(_RNG.normal())
    return sample + noisy_helper()


def run_all(backend, shards):
    return run_sharded(backend, mc_shard_task, shards)
