"""Clean: every stream derives from the shard plan."""

import numpy as np

_SEED_OFFSET = 17


def run_sharded(backend, task, shards):
    return [task(shard) for shard in shards]


def mc_shard_task(shard) -> float:
    rng = shard.rng()
    return float(rng.normal())


def seeded_helper(seed: int) -> float:
    rng = np.random.default_rng(seed + _SEED_OFFSET)
    return float(rng.normal())


def run_all(backend, shards):
    return run_sharded(backend, mc_shard_task, shards)
