"""Fixture: RPL001 violations — global RNG state and unseeded generators."""

import numpy as np
from numpy.random import default_rng


def draw_bad(n):
    return np.random.rand(n)


def make_rng_bad():
    return default_rng()


def simulate_bad(n, seed=None):
    return np.random.default_rng(seed).normal(size=n)
