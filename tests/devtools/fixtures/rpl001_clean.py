"""Fixture: RPL001-clean — explicitly seeded Generator API only."""

import numpy as np


def draw(n, seed=1234):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n)


def spawn(seed_sequence):
    return np.random.Generator(np.random.PCG64(seed_sequence))
