"""Fixture: RPL002 violations — raw offset arithmetic and mixed suffixes."""


def to_kelvin(temp_c):
    return temp_c + 273.15


def delta(temp_c, temp_k):
    return temp_k - temp_c
