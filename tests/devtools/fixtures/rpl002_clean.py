"""Fixture: RPL002-clean — conversions go through repro.units."""

from repro import units


def to_kelvin(temp_c):
    return units.celsius_to_kelvin(temp_c)


def delta(temp_c, temp_k):
    return temp_k - units.celsius_to_kelvin(temp_c)
