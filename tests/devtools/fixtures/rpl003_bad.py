"""Fixture: RPL003 violations — bare stdlib exceptions from library code."""


def check(x):
    if x < 0:
        raise ValueError("negative input")
    if x > 10:
        raise RuntimeError("input too large")
    return x
