"""Fixture: RPL003-clean — raises from the ReproError hierarchy."""

from repro.errors import ConfigurationError, NumericalError


def check(x):
    if x < 0:
        raise ConfigurationError("negative input")
    if x > 10:
        raise NumericalError("input too large")
    return x
