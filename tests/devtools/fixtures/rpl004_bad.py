"""Fixture: RPL004 violation — bare print outside cli.py."""


def report(x):
    print("value:", x)
