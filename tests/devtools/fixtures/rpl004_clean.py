"""Fixture: RPL004-clean — diagnostics through the structured logger."""

from repro.obs.logging import get_logger

_LOG = get_logger("fixture")


def report(x):
    _LOG.info("value %s", x)
