"""Violating fixture: ad-hoc generators inside worker kernels."""

import numpy as np


def _chunk_survival(n_chips):
    rng = np.random.default_rng(1234)
    return rng.standard_normal(n_chips)


def shard_worker(shard):
    rng = np.random.default_rng(99)
    return rng.integers(0, 10, size=shard.size)
