"""Clean fixture: workers derive their streams from the shard plan."""

import numpy as np


def _chunk_survival(n_chips, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n_chips)


def shard_worker(shard):
    rng = shard.rng()
    return rng.integers(0, 10, size=shard.size)


def plain_helper():
    return np.random.default_rng(7)
