"""RPL008 violations: dynamic or malformed metric/span names."""

from repro import obs
from repro.obs import metrics


def record(route, job_id, value):
    metrics.inc(f"service.errors.{route}")
    metrics.observe("service.latency." + route, value)
    metrics.gauge("service.queue.%s" % route, value)
    obs.inc("service.jobs.{}".format(job_id))
    with obs.span("Service.Job"):
        pass
