"""RPL008-clean: literal names, or indirection through a literal table."""

from repro import obs
from repro.obs import metrics

_ROUTE_LATENCY = {
    "jobs_submit": "service.latency.jobs_submit",
    "other": "service.latency.other",
}


def record(route, value):
    metrics.inc("service.requests")
    metrics.observe(_ROUTE_LATENCY.get(route, "service.latency.other"), value)
    metrics.gauge("service.jobs.queued", 3)
    with obs.span("service.job", kind="mc"):
        obs.observe("exec.shard.seconds", value)
