"""RPL012 violations: stdlib network calls without explicit timeouts."""

import socket
import urllib.request
import urllib.request as req
from http.client import HTTPSConnection
from urllib.request import urlopen as open_url


def fetch(url):
    with urllib.request.urlopen(url) as raw:
        return raw.read()


def fetch_aliased(url):
    return req.urlopen(url).read()


def fetch_from_import(url):
    return open_url(url).read()


def connect(host):
    return socket.create_connection((host, 80))


def https(host):
    return HTTPSConnection(host)
