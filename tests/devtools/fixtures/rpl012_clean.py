"""RPL012-clean: every network call carries an explicit timeout."""

import socket
import urllib.request
import urllib.request as req
from http.client import HTTPSConnection
from urllib.request import urlopen as open_url


def fetch(url):
    with urllib.request.urlopen(url, timeout=10.0) as raw:
        return raw.read()


def fetch_aliased(url):
    return req.urlopen(url, None, 10.0).read()


def fetch_from_import(url):
    return open_url(url, timeout=10.0).read()


def connect(host):
    return socket.create_connection((host, 80), 5.0)


def https(host):
    return HTTPSConnection(host, 443, timeout=5.0)


def unrelated(url):
    # Same attribute name on a different object is not a network call.
    class Client:
        def urlopen(self, target):
            return target

    return Client().urlopen(url)
