"""Violating fixture for RPL007: blocking calls on service threads."""

import subprocess
import time
from time import sleep as pause


def handle_status():
    time.sleep(0.5)
    return {"state": "running"}


def handle_external():
    return subprocess.run(["analyzer", "--version"], capture_output=True)


def handle_wait():
    pause(1.0)
    return {"state": "done"}
