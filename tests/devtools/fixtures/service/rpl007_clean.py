"""Clean fixture for RPL007: waits go through events with timeouts."""

import threading
import time


def handle_status(done: threading.Event):
    done.wait(timeout=0.5)
    stamp = time.monotonic()
    return {"state": "done" if done.is_set() else "running", "at": stamp}
