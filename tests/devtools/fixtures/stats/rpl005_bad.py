"""Fixture: RPL005 violations — float equality and unguarded np.exp."""

import numpy as np


def kernel(x):
    if x == 1.0:
        return 0.0
    return np.exp(x)
