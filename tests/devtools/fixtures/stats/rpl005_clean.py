"""Fixture: RPL005-clean — finiteness guard before the transcendental."""

import numpy as np

from repro.errors import NumericalError


def kernel(x):
    x = np.asarray(x, dtype=float)
    if not np.all(np.isfinite(x)):
        raise NumericalError("kernel input must be finite")
    return np.exp(x)
