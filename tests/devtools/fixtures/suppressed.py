"""Fixture: every violation below carries an explicit suppression."""

import numpy as np


def draw(n):
    return np.random.rand(n)  # reprolint: disable=RPL001


def to_kelvin(temp_c):
    return temp_c + 273.15  # reprolint: disable=RPL002, RPL005


def check(x):
    if x == 1.0:  # reprolint: disable=ALL
        raise ValueError("bad")  # reprolint: disable=RPL003
    print(x)  # reprolint: disable=RPL004
    return x


def chunk_task(n):
    rng = np.random.default_rng(7)  # reprolint: disable=RPL006
    return rng.standard_normal(n)
