"""Tests for the call-graph concurrency rules (RPL009/RPL010/RPL011).

Each project rule runs against a seeded *bad* package (must fire with the
expected count) and a *clean* sibling (must stay silent), mirroring the
per-file fixture convention in ``test_reprolint.py``.  Root inference and
lock-context propagation get direct unit coverage.
"""

import shutil
from pathlib import Path

import pytest

from repro.devtools.concurrency import (
    infer_thread_roots,
    lock_context_functions,
)
from repro.devtools.engine import lint_project
from repro.devtools.graph import build_index
from repro.devtools.rules import ALL_PROJECT_RULES

FIXTURES = Path(__file__).parent / "fixtures"
PROJECTS = FIXTURES / "projects"

#: rule id -> (bad package, clean package, expected finding count).
PROJECT_RULE_FIXTURES = {
    "RPL009": ("rpl009_bad", "rpl009_clean", 2),
    "RPL010": ("rpl010_bad", "rpl010_clean", 1),
    "RPL011": ("rpl011_bad", "rpl011_clean", 2),
}


class TestProjectRegistry:
    def test_catalogue_matches_fixtures(self):
        assert set(ALL_PROJECT_RULES) == set(PROJECT_RULE_FIXTURES)

    def test_ids_do_not_collide_with_file_rules(self):
        from repro.devtools.rules import ALL_RULES

        assert not set(ALL_PROJECT_RULES) & set(ALL_RULES)


class TestProjectRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(PROJECT_RULE_FIXTURES))
    def test_bad_fixture_fires(self, rule_id):
        bad, _clean, expected = PROJECT_RULE_FIXTURES[rule_id]
        findings, n_files = lint_project([PROJECTS / bad], select=[rule_id])
        assert n_files >= 2
        assert [f.rule for f in findings] == [rule_id] * expected

    @pytest.mark.parametrize("rule_id", sorted(PROJECT_RULE_FIXTURES))
    def test_clean_fixture_silent(self, rule_id):
        _bad, clean, _expected = PROJECT_RULE_FIXTURES[rule_id]
        findings, _ = lint_project([PROJECTS / clean], select=[rule_id])
        assert findings == []


class TestThreadRoots:
    def test_rpl009_fixture_roots(self):
        index = build_index(PROJECTS / "rpl009_bad")
        by_kind = {}
        for root in infer_thread_roots(index):
            by_kind.setdefault(root.kind, set()).add(root.qualname)
        assert "rpl009_bad.state.Handler.do_GET" in by_kind["http-handler"]
        assert "rpl009_bad.state.worker" in by_kind["thread-target"]
        # serve() has no in-graph caller: it belongs to the main root.
        assert "rpl009_bad.state.serve" in by_kind["main"]

    def test_main_roots_share_one_identity(self):
        index = build_index(PROJECTS / "rpl009_bad")
        identities = {
            root.identity
            for root in infer_thread_roots(index)
            if root.kind == "main"
        }
        assert identities == {"main"}

    def test_pool_worker_root_via_partial(self, tmp_path):
        pkg = tmp_path / "poolpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "run.py").write_text(
            "from functools import partial\n"
            "def work(chunk, extra):\n"
            "    return chunk\n"
            "def launch(pool, chunks):\n"
            "    return pool.imap_unordered(partial(work, extra=1), chunks)\n"
        )
        index = build_index(pkg)
        kinds = {
            root.qualname: root.kind for root in infer_thread_roots(index)
        }
        assert kinds["poolpkg.run.work"] == "pool-worker"


class TestLockContext:
    def test_all_locked_callers_propagate(self, tmp_path):
        pkg = tmp_path / "lockpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "m.py").write_text(
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_state = {}\n"
            "def _mutate():\n"
            "    _state['k'] = 1\n"
            "def outer_a():\n"
            "    with _lock:\n"
            "        _mutate()\n"
            "def outer_b():\n"
            "    with _lock:\n"
            "        _mutate()\n"
        )
        index = build_index(pkg)
        assert "lockpkg.m._mutate" in lock_context_functions(index)

    def test_one_unlocked_caller_breaks_context(self, tmp_path):
        pkg = tmp_path / "lockpkg2"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "m.py").write_text(
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def _mutate():\n"
            "    pass\n"
            "def outer_a():\n"
            "    with _lock:\n"
            "        _mutate()\n"
            "def outer_b():\n"
            "    _mutate()\n"
        )
        index = build_index(pkg)
        assert "lockpkg2.m._mutate" not in lock_context_functions(index)


class TestFindingQuality:
    def test_rpl010_message_names_the_chain(self):
        findings, _ = lint_project(
            [PROJECTS / "rpl010_bad"], select=["RPL010"]
        )
        (finding,) = findings
        assert "do_POST" in finding.message
        assert "enqueue -> rpl010_bad.svc.wait_for_slot" in finding.message
        assert "time.sleep" in finding.message

    def test_rpl009_message_names_roots(self):
        findings, _ = lint_project(
            [PROJECTS / "rpl009_bad"], select=["RPL009"]
        )
        assert findings
        for finding in findings:
            assert "thread roots" in finding.message

    def test_rpl011_message_names_task(self):
        findings, _ = lint_project(
            [PROJECTS / "rpl011_bad"], select=["RPL011"]
        )
        assert findings
        for finding in findings:
            assert "mc_shard_task" in finding.message


class TestProjectSuppressions:
    def _copy_fixture(self, tmp_path, name):
        target = tmp_path / name
        shutil.copytree(PROJECTS / name, target)
        return target

    def test_line_suppression_applies(self, tmp_path):
        pkg = self._copy_fixture(tmp_path, "rpl009_bad")
        state = pkg / "state.py"
        source = state.read_text().replace(
            '_REGISTRY["last"] = "get"',
            '_REGISTRY["last"] = "get"  # reprolint: disable=RPL009',
        )
        state.write_text(source)
        findings, _ = lint_project([pkg], select=["RPL009"])
        assert len(findings) == 1  # only the worker write remains

    def test_disable_file_silences_whole_module(self, tmp_path):
        pkg = self._copy_fixture(tmp_path, "rpl009_bad")
        state = pkg / "state.py"
        state.write_text(
            "# reprolint: disable-file=RPL009\n" + state.read_text()
        )
        findings, _ = lint_project([pkg], select=["RPL009"])
        assert findings == []
