"""Tests for the project indexer and call graph (repro.devtools.graph).

Resolution corner cases run against the committed ``graphpkg`` fixture
package: ``__init__`` re-exports, relative imports with aliases, aliased
external imports (``import numpy as np``), attribute-type chains and
locked call sites.  Soundness here means: every edge the index claims
must correspond to a real call in the fixture.
"""

import ast
from pathlib import Path

import pytest

from repro.devtools.engine import LintFileError
from repro.devtools.graph import (
    ClassInfo,
    FunctionInfo,
    build_index,
)

FIXTURES = Path(__file__).parent / "fixtures"
GRAPHPKG = FIXTURES / "graphpkg"


@pytest.fixture(scope="module")
def index():
    return build_index(GRAPHPKG)


class TestIndexing:
    def test_all_modules_indexed(self, index):
        assert set(index.modules) == {
            "graphpkg",
            "graphpkg.util",
            "graphpkg.core",
            "graphpkg.core.engine",
        }

    def test_functions_and_classes_recorded(self, index):
        assert "graphpkg.util.helper" in index.functions
        assert "graphpkg.core.engine.Store" in index.classes
        store = index.classes["graphpkg.core.engine.Store"]
        assert set(store.methods) == {"__init__", "add", "locked_add"}

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(LintFileError, match="not a directory"):
            build_index(tmp_path / "nope")

    def test_syntax_error_raises(self, tmp_path):
        pkg = tmp_path / "brokenpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "bad.py").write_text("def f(:\n")
        with pytest.raises(LintFileError, match="syntax error"):
            build_index(pkg)


class TestImportResolution:
    def test_init_reexport_resolves_to_definition(self, index):
        resolved = index.resolve_symbol("graphpkg", "helper")
        assert isinstance(resolved, FunctionInfo)
        assert resolved.qualname == "graphpkg.util.helper"

    def test_relative_import_alias(self, index):
        # ``from ..util import helper as h`` inside core/engine.py.
        resolved = index.resolve_symbol("graphpkg.core.engine", "h")
        assert isinstance(resolved, FunctionInfo)
        assert resolved.qualname == "graphpkg.util.helper"

    def test_aliased_external_import(self, index):
        fn = index.functions["graphpkg.util.noisy"]
        calls = [
            node
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "rand"
        ]
        assert len(calls) == 1
        assert (
            index.resolve_external(fn.module, calls[0].func)
            == "numpy.random.rand"
        )

    def test_internal_symbol_is_not_external(self, index):
        fn = index.functions["graphpkg.core.engine.Store.add"]
        call = next(
            node
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Call)
        )
        assert index.resolve_external(fn.module, call.func) is None


class TestCallGraph:
    def edges(self, index, qualname):
        return {edge.callee for edge in index.calls[qualname]}

    def test_aliased_relative_call_edge(self, index):
        assert "graphpkg.util.helper" in self.edges(
            index, "graphpkg.core.engine.Store.add"
        )

    def test_self_method_edge(self, index):
        assert "graphpkg.core.engine.Store.add" in self.edges(
            index, "graphpkg.core.engine.Store.locked_add"
        )

    def test_attr_type_chain_edge(self, index):
        # Engine.run -> self.store.add, typed by the __init__ annotation.
        assert "graphpkg.core.engine.Store.add" in self.edges(
            index, "graphpkg.core.engine.Engine.run"
        )

    def test_return_annotation_local_edge(self, index):
        # fresh = self.make_store(); fresh.add(...) resolves via the
        # callee's ``-> Store`` return annotation.
        assert "graphpkg.core.engine.Store.add" in self.edges(
            index, "graphpkg.core.engine.Engine.indirect"
        )

    def test_locked_edges_annotated(self, index):
        locked = {
            edge.callee: edge.locked
            for edge in index.calls["graphpkg.core.engine.Store.locked_add"]
        }
        assert locked["graphpkg.core.engine.Store.add"] is True
        unlocked = {
            edge.callee: edge.locked
            for edge in index.calls["graphpkg.core.engine.Engine.run"]
        }
        assert unlocked["graphpkg.core.engine.Store.add"] is False

    def test_soundness_every_edge_is_anchored_at_a_real_call(self, index):
        # Every edge must point at an actual Call node in the caller's
        # body, and every callee must exist in the index.
        for qualname, edges in index.calls.items():
            fn = index.functions[qualname]
            call_nodes = {
                id(node)
                for node in ast.walk(fn.node)
                if isinstance(node, ast.Call)
            }
            for edge in edges:
                assert id(edge.node) in call_nodes, (
                    f"{qualname} -> {edge.callee} not anchored in the body"
                )
                assert (
                    edge.callee in index.functions
                    or edge.callee in index.classes
                )

    def test_reachability(self, index):
        reached = index.reachable(["graphpkg.core.engine.Engine.run"])
        assert "graphpkg.core.engine.Store.add" in reached
        assert "graphpkg.util.helper" in reached
        assert "graphpkg.util.noisy" not in reached

    def test_call_path(self, index):
        path = index.call_path(
            "graphpkg.core.engine.Engine.run", "graphpkg.util.helper"
        )
        assert path == [
            "graphpkg.core.engine.Engine.run",
            "graphpkg.core.engine.Store.add",
            "graphpkg.util.helper",
        ]
        assert (
            index.call_path("graphpkg.util.helper", "graphpkg.util.noisy")
            is None
        )


class TestClassModel:
    def test_attr_types_from_init_annotation(self, index):
        engine = index.classes["graphpkg.core.engine.Engine"]
        assert engine.attr_types["store"] == "graphpkg.core.engine.Store"

    def test_thread_safe_attr_exempted(self, index):
        store = index.classes["graphpkg.core.engine.Store"]
        assert "_lock" in store.thread_safe_attrs

    def test_base_resolution(self, tmp_path):
        pkg = tmp_path / "basepkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text("class Base:\n    def hook(self):\n        pass\n")
        (pkg / "b.py").write_text(
            "from basepkg.a import Base\n"
            "class Child(Base):\n    pass\n"
        )
        index = build_index(pkg)
        assert (
            index.class_method("basepkg.b.Child", "hook") == "basepkg.a.Base.hook"
        )
        assert index.class_has_base("basepkg.b.Child", "Base")

    def test_classinfo_types(self, index):
        assert isinstance(
            index.classes["graphpkg.core.engine.Store"], ClassInfo
        )
