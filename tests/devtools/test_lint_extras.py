"""Tests for the lint satellites: baseline, cache, SARIF, project CLI.

The SARIF renderer is pinned to a committed golden file so accidental
schema drift (GitHub code scanning rejects malformed documents) fails
loudly; the baseline and cache are exercised end-to-end through both the
library API and the CLI.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.devtools.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.devtools.cache import LintCache
from repro.devtools.engine import LintFileError, lint_paths, lint_project
from repro.devtools.lint import main
from repro.devtools.rules import Finding
from repro.devtools.sarif import render_sarif

FIXTURES = Path(__file__).parent / "fixtures"
PROJECTS = FIXTURES / "projects"
GOLDEN = FIXTURES / "sarif_golden.json"


def _f(rule="RPL001", path="src/m.py", line=3, col=1, message="bad thing"):
    return Finding(rule=rule, path=path, line=line, col=col, message=message)


class TestFingerprint:
    def test_line_number_independent(self):
        assert fingerprint(_f(line=3)) == fingerprint(_f(line=300))

    def test_sensitive_to_rule_path_message(self):
        base = fingerprint(_f())
        assert fingerprint(_f(rule="RPL002")) != base
        assert fingerprint(_f(path="src/other.py")) != base
        assert fingerprint(_f(message="different")) != base

    def test_short_stable_hex(self):
        fp = fingerprint(_f())
        assert len(fp) == 16
        int(fp, 16)  # parses as hex


class TestBaselineRoundTrip:
    def test_write_load_apply(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [_f(line=1), _f(line=9), _f(rule="RPL004", message="x")]
        write_baseline(path, findings)
        baseline = load_baseline(path)
        # Two identical-message findings share one fingerprint, count 2.
        assert sorted(baseline.values()) == [1, 2]
        fresh, suppressed = apply_baseline(findings, baseline)
        assert fresh == [] and suppressed == 3

    def test_overflow_beyond_count_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_f(line=1)])
        baseline = load_baseline(path)
        fresh, suppressed = apply_baseline(
            [_f(line=1), _f(line=2)], baseline
        )
        assert suppressed == 1
        assert len(fresh) == 1

    def test_new_rule_not_suppressed(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_f()])
        fresh, _ = apply_baseline(
            [_f(), _f(rule="RPL009", message="race")], load_baseline(path)
        )
        assert [f.rule for f in fresh] == ["RPL009"]

    def test_invalid_file_raises(self, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{}")
        with pytest.raises(LintFileError, match="not a reprolint baseline"):
            load_baseline(bad)
        bad.write_text("not json")
        with pytest.raises(LintFileError, match="invalid baseline JSON"):
            load_baseline(bad)


class TestBaselineCli:
    def test_update_then_clean_then_regression(self, tmp_path, capsys):
        pkg = tmp_path / "rpl009_bad"
        shutil.copytree(PROJECTS / "rpl009_bad", pkg)
        baseline = tmp_path / "baseline.json"
        args = [
            "--project",
            str(pkg),
            "--select",
            "RPL009",
            "--no-cache",
            "--baseline",
            str(baseline),
        ]
        # Freeze the existing debt.
        assert main([*args, "--update-baseline"]) == 0
        assert "2 finding(s)" in capsys.readouterr().out
        # Baselined findings no longer fail the build.
        assert main(args) == 0
        assert "(2 baselined)" in capsys.readouterr().out
        # A new violation still does (same message fingerprint, so it
        # overflows the baselined count rather than matching it).
        state = pkg / "state.py"
        state.write_text(
            state.read_text().replace(
                '_REGISTRY["last"] = "get"',
                '_REGISTRY["last"] = "get"\n'
                '        _REGISTRY["extra"] = "get"',
            )
        )
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "RPL009" in out and "(2 baselined)" in out

    def test_no_baseline_flag_ignores_file(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            "--project",
            str(PROJECTS / "rpl009_bad"),
            "--select",
            "RPL009",
            "--no-cache",
            "--baseline",
            str(baseline),
        ]
        assert main([*args, "--update-baseline"]) == 0
        capsys.readouterr()
        assert main([*args, "--no-baseline"]) == 1


class TestCache:
    def test_hit_returns_same_findings(self, tmp_path):
        cache = LintCache(tmp_path / "cache")
        first, _ = lint_paths([FIXTURES / "rpl001_bad.py"], cache=cache)
        assert cache.hits == 0 and cache.misses >= 1
        second, _ = lint_paths([FIXTURES / "rpl001_bad.py"], cache=cache)
        assert cache.hits >= 1
        assert second == first

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import numpy as np\nx = np.random.rand()\n")
        cache = LintCache(tmp_path / "cache")
        first, _ = lint_paths([target], cache=cache)
        assert len(first) == 1
        target.write_text("x = 1\n")
        second, _ = lint_paths([target], cache=cache)
        assert second == []

    def test_rule_selection_part_of_key(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import numpy as np\nx = np.random.rand()\n")
        cache = LintCache(tmp_path / "cache")
        with_rule, _ = lint_paths([target], select=["RPL001"], cache=cache)
        without, _ = lint_paths([target], select=["RPL004"], cache=cache)
        assert len(with_rule) == 1 and without == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = LintCache(tmp_path / "cache")
        source = "import numpy as np\nx = np.random.rand()\n"
        target = tmp_path / "mod.py"
        target.write_text(source)
        lint_paths([target], cache=cache)
        [entry] = list((tmp_path / "cache").rglob("*.json"))
        entry.write_text("garbage")
        findings, _ = lint_paths([target], cache=cache)
        assert len(findings) == 1

    def test_cli_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cachedir"
        args = [
            "--cache-dir",
            str(cache_dir),
            str(FIXTURES / "rpl001_bad.py"),
        ]
        assert main(args) == 1
        assert cache_dir.exists()
        capsys.readouterr()
        assert main(args) == 1  # second run served from cache

    def test_cli_no_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cachedir"
        args = [
            "--no-cache",
            "--cache-dir",
            str(cache_dir),
            str(FIXTURES / "rpl001_clean.py"),
        ]
        assert main(args) == 0
        assert not cache_dir.exists()


class TestSarif:
    def test_golden_file(self):
        findings = [
            Finding(
                "RPL001",
                "src/repro/demo.py",
                12,
                5,
                "global-state RNG call np.random.rand(); create an "
                "explicitly-seeded np.random.default_rng(seed) and thread "
                "it through instead",
            ),
            Finding(
                "RPL009",
                "src/repro/service/demo.py",
                40,
                9,
                "unguarded write to module global repro.service.demo._STATE "
                "in repro.service.demo.worker; the state is reachable from "
                "2 thread roots (main, repro.service.demo.worker) — hold "
                "the guarding lock or make every call path lock-held",
            ),
        ]
        assert render_sarif(findings) == GOLDEN.read_text()

    def test_document_shape(self):
        doc = json.loads(render_sarif([_f()]))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        (result,) = run["results"]
        assert result["ruleId"] == "RPL001"
        assert result["ruleIndex"] == 0
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/m.py"
        assert location["region"] == {"startLine": 3, "startColumn": 1}

    def test_rules_array_restricted_to_used_ids(self):
        doc = json.loads(
            render_sarif([_f(rule="RPL004", message="print call")])
        )
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["RPL004"]

    def test_empty_findings_valid(self):
        doc = json.loads(render_sarif([]))
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []

    def test_cli_sarif_output(self, capsys):
        code = main(
            ["--format", "sarif", "--no-cache", str(FIXTURES / "rpl001_bad.py")]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["runs"][0]["results"]) == 3


class TestProjectCli:
    def test_project_mode_runs_graph_rules(self, capsys):
        code = main(
            [
                "--project",
                str(PROJECTS / "rpl010_bad"),
                "--select",
                "RPL010",
                "--no-cache",
                "--no-baseline",
            ]
        )
        assert code == 1
        assert "RPL010" in capsys.readouterr().out

    def test_project_rule_ids_listed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPL009", "RPL010", "RPL011"):
            assert rule_id in out
        assert "--project" in out

    def test_project_rule_without_project_flag_errors(self, capsys):
        code = main(
            ["--select", "RPL009", "--no-cache", str(FIXTURES / "rpl001_bad.py")]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unknown_rule_in_project_mode(self, capsys):
        code = main(
            [
                "--project",
                "--select",
                "RPL999",
                "--no-cache",
                str(PROJECTS / "rpl009_clean"),
            ]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err
