"""Self-tests for reprolint: rules, suppressions, CLI and self-lint.

Each rule is exercised against a violating and a clean fixture under
``tests/devtools/fixtures/``; the CLI contract (exit codes, text/JSON
output) and the suppression-comment grammar are covered separately.  The
final test self-lints ``src/repro`` — the gate CI enforces.
"""

import json
import re
from pathlib import Path

import pytest

from repro.devtools import (
    ALL_RULES,
    Finding,
    get_rule,
    iter_rules,
    lint_paths,
    lint_source,
)
from repro.devtools.lint import main
from repro.devtools.rules import Rule, register
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"

#: rule id -> (violating fixture, clean fixture, expected finding count).
RULE_FIXTURES = {
    "RPL001": ("rpl001_bad.py", "rpl001_clean.py", 3),
    "RPL002": ("rpl002_bad.py", "rpl002_clean.py", 2),
    "RPL003": ("rpl003_bad.py", "rpl003_clean.py", 2),
    "RPL004": ("rpl004_bad.py", "rpl004_clean.py", 1),
    "RPL005": ("stats/rpl005_bad.py", "stats/rpl005_clean.py", 2),
    "RPL006": ("rpl006_bad.py", "rpl006_clean.py", 2),
    "RPL007": ("service/rpl007_bad.py", "service/rpl007_clean.py", 3),
    "RPL008": ("rpl008_bad.py", "rpl008_clean.py", 5),
    "RPL012": ("rpl012_bad.py", "rpl012_clean.py", 5),
    "RPL013": ("kernels/rpl013_bad.py", "kernels/rpl013_clean.py", 6),
    "RPL014": ("mechanisms/rpl014_bad.py", "mechanisms/rpl014_clean.py", 4),
}


class TestRegistry:
    def test_catalogue_matches_fixtures(self):
        assert set(ALL_RULES) == set(RULE_FIXTURES)

    def test_iter_rules_sorted_and_described(self):
        rules = list(iter_rules())
        assert [r.rule_id for r in rules] == sorted(ALL_RULES)
        for rule in rules:
            assert rule.name and rule.summary

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("RPL999")

    def test_duplicate_id_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):

            @register
            class Duplicate(Rule):
                rule_id = "RPL001"

    def test_missing_id_rejected(self):
        with pytest.raises(ConfigurationError, match="no rule_id"):

            @register
            class Nameless(Rule):
                pass


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_violating_fixture_flagged(self, rule_id):
        bad, _clean, expected = RULE_FIXTURES[rule_id]
        findings, n_files = lint_paths([FIXTURES / bad])
        assert n_files == 1
        assert [f.rule for f in findings] == [rule_id] * expected

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_clean_fixture_passes(self, rule_id):
        _bad, clean, _expected = RULE_FIXTURES[rule_id]
        findings, n_files = lint_paths([FIXTURES / clean])
        assert n_files == 1
        assert findings == []

    def test_render_format(self):
        findings, _ = lint_paths([FIXTURES / "rpl003_bad.py"])
        for finding in findings:
            assert re.fullmatch(
                r".*rpl003_bad\.py:\d+:\d+: RPL003 .+", finding.render()
            )

    def test_select_narrows_rules(self):
        source = (FIXTURES / "rpl003_bad.py").read_text()
        only_print = lint_source(source, rules=[get_rule("RPL004")])
        assert only_print == []
        only_errors = lint_source(source, rules=[get_rule("RPL003")])
        assert len(only_errors) == 2


class TestRuleEdges:
    def test_rpl001_exempts_test_modules(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert lint_source(source, path="test_foo.py") == []
        assert len(lint_source(source, path="foo.py")) == 1

    def test_rpl001_default_rng_none_literal(self):
        findings = lint_source("from numpy.random import default_rng\nr = default_rng(None)\n")
        assert [f.rule for f in findings] == ["RPL001"]

    def test_rpl002_exempts_units_module(self):
        source = "def f(t):\n    return t + 273.15\n"
        assert lint_source(source, path="units.py") == []
        assert len(lint_source(source, path="model.py")) == 1

    def test_rpl002_integer_offset(self):
        findings = lint_source("def f(t):\n    return t - 273\n")
        assert [f.rule for f in findings] == ["RPL002"]

    def test_rpl004_exempts_cli(self):
        source = "print('hello')\n"
        assert lint_source(source, path="cli.py") == []
        assert len(lint_source(source, path="report.py")) == 1

    def test_rpl005_transcendental_only_in_stats(self):
        source = "import numpy as np\ndef f(x):\n    return np.exp(x)\n"
        assert lint_source(source, path=Path("pkg/other.py")) == []
        findings = lint_source(source, path=Path("stats/kernel.py"))
        assert [f.rule for f in findings] == ["RPL005"]

    def test_rpl006_only_worker_functions(self):
        source = (
            "import numpy as np\n"
            "def helper():\n"
            "    return np.random.default_rng(3)\n"
        )
        assert lint_source(source) == []
        worker = source.replace("helper", "run_chunk")
        assert [f.rule for f in lint_source(worker)] == ["RPL006"]

    def test_rpl006_seed_parameter_exempts(self):
        source = (
            "import numpy as np\n"
            "def run_shard(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert lint_source(source) == []

    def test_rpl007_only_in_service_package(self):
        source = "import time\ndef poll():\n    time.sleep(0.1)\n"
        assert lint_source(source, path=Path("exec/runner.py")) == []
        findings = lint_source(source, path=Path("service/jobs.py"))
        assert [f.rule for f in findings] == ["RPL007"]

    def test_rpl007_catches_aliased_from_import(self):
        source = (
            "from time import sleep as pause\n"
            "def poll():\n"
            "    pause(0.1)\n"
        )
        findings = lint_source(source, path=Path("service/app.py"))
        assert [f.rule for f in findings] == ["RPL007"]

    def test_rpl007_exempts_service_tests(self):
        source = "import time\ndef wait():\n    time.sleep(0.1)\n"
        assert lint_source(source, path=Path("service/test_app.py")) == []

    def test_rpl008_bare_span_call_flagged(self):
        source = (
            "from repro.obs.trace import span\n"
            "def f(stage):\n"
            "    with span(f'stage.{stage}'):\n"
            "        pass\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RPL008"]

    def test_rpl008_literal_dict_lookup_allowed(self):
        source = (
            "from repro.obs import metrics\n"
            "TABLE = {'a': 'service.errors.a'}\n"
            "def f(code):\n"
            "    metrics.inc(TABLE.get(code, 'service.errors.other'))\n"
        )
        assert lint_source(source) == []

    def test_rpl008_exempts_tests(self):
        source = (
            "from repro.obs import metrics\n"
            "def f(name):\n"
            "    metrics.inc(f'dyn.{name}')\n"
        )
        assert lint_source(source, path="test_metrics.py") == []
        assert len(lint_source(source, path="metrics_use.py")) == 1

    def test_rpl008_uppercase_literal_flagged(self):
        source = (
            "from repro.obs import metrics\n"
            "metrics.gauge('Queue.Depth', 1)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RPL008"]

    def test_rpl005_guard_satisfies(self):
        source = (
            "import numpy as np\n"
            "def f(x):\n"
            "    if not np.all(np.isfinite(x)):\n"
            "        return np.nan\n"
            "    return np.exp(x)\n"
        )
        assert lint_source(source, path=Path("stats/kernel.py")) == []


class TestSuppressions:
    def test_suppressed_fixture_is_clean(self):
        findings, _ = lint_paths([FIXTURES / "suppressed.py"])
        assert findings == []

    def test_stripping_comments_restores_findings(self):
        source = (FIXTURES / "suppressed.py").read_text()
        stripped = "\n".join(
            line.split("#")[0].rstrip() for line in source.splitlines()
        )
        rules = {f.rule for f in lint_source(stripped)}
        assert rules == {
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
        }

    def test_suppression_is_line_scoped(self):
        source = (
            "import numpy as np\n"
            "a = np.random.rand(2)  # reprolint: disable=RPL001\n"
            "b = np.random.rand(2)\n"
        )
        findings = lint_source(source)
        assert [f.line for f in findings] == [3]

    def test_wrong_rule_id_does_not_suppress(self):
        source = "import numpy as np\nx = np.random.rand(2)  # reprolint: disable=RPL004\n"
        assert len(lint_source(source)) == 1

    def test_multi_rule_list_suppresses_each_listed_rule(self):
        source = (
            "import numpy as np\n"
            "def f(t):\n"
            "    return np.random.rand() + t + 273.15"
            "  # reprolint: disable=RPL001,RPL002\n"
        )
        assert lint_source(source) == []

    def test_multi_rule_list_tolerates_spaces(self):
        source = (
            "import numpy as np\n"
            "def f(t):\n"
            "    return np.random.rand() + t + 273.15"
            "  # reprolint: disable=RPL001 , RPL002\n"
        )
        assert lint_source(source) == []

    def test_multi_rule_list_leaves_unlisted_rules(self):
        source = (
            "import numpy as np\n"
            "def f(t):\n"
            "    return np.random.rand() + t + 273.15"
            "  # reprolint: disable=RPL001,RPL004\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RPL002"]

    def test_disable_file_silences_listed_rule_everywhere(self):
        source = (
            "# reprolint: disable-file=RPL001\n"
            "import numpy as np\n"
            "a = np.random.rand(2)\n"
            "b = np.random.rand(2)\n"
        )
        assert lint_source(source) == []

    def test_disable_file_position_does_not_matter(self):
        source = (
            "import numpy as np\n"
            "a = np.random.rand(2)\n"
            "# reprolint: disable-file=RPL001\n"
            "b = np.random.rand(2)\n"
        )
        assert lint_source(source) == []

    def test_disable_file_multi_rule_list(self):
        source = (
            "# reprolint: disable-file=RPL001, RPL002\n"
            "import numpy as np\n"
            "def f(t):\n"
            "    return np.random.rand() + t + 273.15\n"
        )
        assert lint_source(source) == []

    def test_disable_file_only_silences_listed_rules(self):
        source = (
            "# reprolint: disable-file=RPL004\n"
            "import numpy as np\n"
            "a = np.random.rand(2)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["RPL001"]

    def test_disable_file_all_sentinel(self):
        source = (
            "# reprolint: disable-file=ALL\n"
            "import numpy as np\n"
            "a = np.random.rand(2)\n"
            "print(a)\n"
        )
        assert lint_source(source) == []


class TestCli:
    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "rpl001_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out and "3 finding(s)" in out

    def test_clean_exit_zero(self, capsys):
        assert main([str(FIXTURES / "rpl001_clean.py")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_report_only_exit_zero(self, capsys):
        assert main(["--report-only", str(FIXTURES / "rpl001_bad.py")]) == 0
        assert "RPL001" in capsys.readouterr().out

    def test_no_paths_exit_two(self, capsys):
        assert main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_missing_path_exit_two(self, capsys):
        assert main(["does/not/exist.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exit_two(self, capsys):
        assert main(["--select", "RPL999", str(FIXTURES)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_syntax_error_exit_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULES:
            assert rule_id in out

    def test_select_filters_cli(self, capsys):
        code = main(["--select", "RPL004", str(FIXTURES / "rpl001_bad.py")])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_module_alias_exposes_main(self):
        from repro.devtools import __main__ as module

        assert module.main is main


class TestJsonOutput:
    def test_round_trip(self, capsys):
        code = main(["--format", "json", str(FIXTURES / "rpl001_bad.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["checked_files"] == 1
        assert payload["counts"] == {"RPL001": 3}
        findings = [Finding(**raw) for raw in payload["findings"]]
        assert sum(payload["counts"].values()) == len(findings)
        for raw, finding in zip(payload["findings"], findings, strict=True):
            assert finding.as_dict() == raw
            assert finding.rule == "RPL001"

    def test_clean_json(self, capsys):
        assert main(["--format", "json", str(FIXTURES / "rpl004_clean.py")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {}
        assert payload["findings"] == []


class TestSelfLint:
    def test_src_repro_is_clean(self):
        findings, n_files = lint_paths([SRC_REPRO])
        assert n_files > 50
        assert findings == []

    def test_src_repro_project_mode_clean_against_baseline(self, monkeypatch):
        # The CI gate: whole-project analysis (per-file + call-graph
        # rules) must be clean modulo the committed findings baseline.
        # Run from the repo root so finding paths match the baseline keys.
        from repro.devtools import lint_project
        from repro.devtools.baseline import apply_baseline, load_baseline

        repo_root = SRC_REPRO.parents[1]
        monkeypatch.chdir(repo_root)
        findings, n_files = lint_project([Path("src/repro")])
        assert n_files > 50
        baseline_path = repo_root / ".reprolint-baseline.json"
        assert baseline_path.exists(), "commit .reprolint-baseline.json"
        fresh, _ = apply_baseline(findings, load_baseline(baseline_path))
        assert fresh == []
