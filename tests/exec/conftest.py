"""Shared fixtures for the execution-subsystem tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Counters are process-global; isolate each test's assertions."""
    obs.reset()
    yield
    obs.reset()
