"""Unit tests for the execution backends and their selection logic."""

import pickle

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.exec import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
    resolve_jobs,
)


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


ITEMS = list(range(12))
EXPECTED = [x * x for x in ITEMS]


class TestSerialBackend:
    def test_map_is_ordered(self):
        assert SerialBackend().map(_square, ITEMS) == EXPECTED

    def test_imap_yields_index_result_pairs(self):
        pairs = list(SerialBackend().imap_unordered(_square, ITEMS))
        assert pairs == [(i, i * i) for i in ITEMS]

    def test_records_metrics(self):
        with obs.enabled():
            SerialBackend().map(_square, ITEMS)
            assert obs.get_counter("exec.tasks") == len(ITEMS)


class TestPoolBackends:
    @pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
    def test_map_matches_serial(self, cls):
        backend = cls(2)
        try:
            assert backend.map(_square, ITEMS) == EXPECTED
        finally:
            backend.close()

    def test_pool_reused_across_calls(self):
        backend = ThreadBackend(2)
        try:
            backend.map(_square, ITEMS)
            pool = backend._pool
            backend.map(_square, ITEMS)
            assert backend._pool is pool
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        backend = ThreadBackend(2)
        backend.map(_square, [1, 2])
        backend.close()
        backend.close()
        assert backend._pool is None

    def test_worker_exception_propagates(self):
        backend = ThreadBackend(2)
        try:
            with pytest.raises(ZeroDivisionError):
                backend.map(lambda x: 1 // x, [1, 0, 2])
        finally:
            backend.close()

    @pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
    def test_picklable_without_live_pool(self, cls):
        backend = cls(3)
        if cls is ThreadBackend:
            backend.map(_square, [1, 2])  # materialise the pool
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.jobs == 3
        assert clone._pool is None
        backend.close()

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5])
    def test_rejects_bad_jobs(self, bad):
        with pytest.raises(ConfigurationError, match="jobs"):
            ThreadBackend(bad)


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() >= 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError, match="REPRO_JOBS"):
            resolve_jobs()

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            resolve_jobs(0)


class TestResolveBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert isinstance(resolve_backend(), SerialBackend)

    def test_jobs_imply_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        backend = resolve_backend(jobs=3)
        assert isinstance(backend, ProcessBackend)
        assert backend.jobs == 3

    def test_env_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        monkeypatch.setenv("REPRO_JOBS", "2")
        backend = resolve_backend()
        assert isinstance(backend, ThreadBackend)
        assert backend.jobs == 2

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_name_is_case_insensitive(self):
        assert isinstance(resolve_backend("Thread", jobs=1), ThreadBackend)

    def test_serial_with_jobs_rejected(self):
        with pytest.raises(ConfigurationError, match="serial"):
            resolve_backend("serial", jobs=4)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown execution"):
            resolve_backend("cluster")

    def test_backend_names_constant(self):
        assert BACKEND_NAMES == ("serial", "thread", "process")
