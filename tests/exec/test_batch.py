"""Unit tests for the batch sweep runner."""

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.exec import ResultCache, SerialBackend
from repro.exec.batch import SweepSpec, batch_table, run_batch

SPEC = SweepSpec(designs=("C1",), methods=("st_fast", "guard"), grid_size=6)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestSweepSpec:
    def test_cells_cross_product_order(self):
        spec = SweepSpec(
            designs=("C1", "C2"),
            methods=("st_fast",),
            temperatures_c=(60.0, 80.0),
        )
        cells = spec.cells()
        assert len(cells) == 4
        assert cells[0] == {
            "design": "C1",
            "temperature_c": 60.0,
            "method": "st_fast",
        }

    def test_no_temps_means_own_profile(self):
        assert SPEC.cells()[0]["temperature_c"] is None

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"designs": (), "methods": ("st_fast",)}, "design"),
            ({"designs": ("C1",), "methods": ()}, "method"),
            ({"designs": ("C9",), "methods": ("st_fast",)}, "unknown design"),
            ({"designs": ("C1",), "methods": ("magic",)}, "unknown method"),
            (
                {"designs": ("C1",), "methods": ("st_fast",), "ppm": 0.0},
                "ppm",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            SweepSpec(**kwargs)


class TestRunBatch:
    def test_second_run_served_from_cache(self, cache):
        first = run_batch(SPEC, backend=SerialBackend(), cache=cache)
        assert first["totals"]["cache_hits"] == 0
        with obs.enabled():
            second = run_batch(SPEC, backend=SerialBackend(), cache=cache)
            hits = obs.get_counter("exec.cache.hit")
            misses = obs.get_counter("exec.cache.miss")
        n_cells = second["totals"]["cells"]
        assert second["totals"]["cache_hits"] == n_cells
        # The acceptance bar: >= 90 % of cells come from the cache.
        assert hits / (hits + misses) >= 0.9
        for a, b in zip(first["cells"], second["cells"], strict=True):
            assert a["lifetime_hours"] == b["lifetime_hours"]
            assert b["cached"]

    def test_no_cache_bypasses(self, cache):
        run_batch(SPEC, backend=SerialBackend(), cache=cache)
        report = run_batch(
            SPEC, backend=SerialBackend(), cache=cache, use_cache=False
        )
        assert report["totals"]["cache_hits"] == 0

    def test_report_shape(self, cache):
        report = run_batch(SPEC, backend=SerialBackend(), cache=cache)
        assert report["spec"]["designs"] == ("C1",)
        assert report["execution"]["backend"] == "serial"
        assert report["execution"]["jobs"] == 1
        for cell in report["cells"]:
            assert cell["lifetime_hours"] > 0.0
            assert np.isfinite(cell["lifetime_years"])

    def test_uniform_temperature_changes_lifetime(self, cache):
        hot = SweepSpec(
            designs=("C1",),
            methods=("st_fast",),
            temperatures_c=(100.0,),
            grid_size=6,
        )
        cool = SweepSpec(
            designs=("C1",),
            methods=("st_fast",),
            temperatures_c=(40.0,),
            grid_size=6,
        )
        hot_life = run_batch(hot, cache=cache)["cells"][0]["lifetime_hours"]
        cool_life = run_batch(cool, cache=cache)["cells"][0]["lifetime_hours"]
        assert cool_life > hot_life


class TestBatchTable:
    def test_renders_rows_and_totals(self, cache):
        report = run_batch(SPEC, backend=SerialBackend(), cache=cache)
        text = batch_table(report)
        assert "st_fast" in text and "guard" in text
        assert "miss" in text
        assert "2 cells, 0 served from cache" in text
        hit_text = batch_table(
            run_batch(SPEC, backend=SerialBackend(), cache=cache)
        )
        assert "hit" in hit_text


FUSED_SPEC = SweepSpec(
    designs=("C1",),
    methods=("st_fast", "temp_unaware"),
    temperatures_c=(40.0, 70.0, 100.0),
    grid_size=6,
)


class TestFusion:
    def test_fused_lifetimes_bitwise_equal_plain(self):
        fused = run_batch(FUSED_SPEC, use_cache=False)
        plain = run_batch(FUSED_SPEC, use_cache=False, fuse=False)
        assert fused["execution"]["fuse"] is True
        assert fused["execution"]["fused_cells"] == 6
        assert plain["execution"]["fuse"] is False
        assert plain["execution"]["fused_cells"] == 0
        for a, b in zip(fused["cells"], plain["cells"], strict=True):
            # Exact float equality: fusion must be invisible in results.
            assert a["lifetime_hours"] == b["lifetime_hours"]

    def test_fused_cells_counter(self):
        with obs.enabled():
            run_batch(FUSED_SPEC, use_cache=False)
            assert obs.get_counter("exec.batch.fused_cells") == 6

    def test_non_fusable_method_falls_back(self):
        spec = SweepSpec(
            designs=("C1",),
            methods=("guard",),
            temperatures_c=(40.0, 70.0),
            grid_size=6,
        )
        report = run_batch(spec, use_cache=False)
        assert report["execution"]["fused_cells"] == 0
        assert report["totals"]["cells"] == 2

    def test_single_temperature_not_fused(self):
        spec = SweepSpec(
            designs=("C1",),
            methods=("st_fast",),
            temperatures_c=(70.0,),
            grid_size=6,
        )
        report = run_batch(spec, use_cache=False)
        assert report["execution"]["fused_cells"] == 0

    def test_cached_cells_excluded_from_fused_group(self, cache):
        warm = SweepSpec(
            designs=("C1",),
            methods=("st_fast",),
            temperatures_c=(40.0,),
            grid_size=6,
        )
        run_batch(warm, cache=cache)
        full = SweepSpec(
            designs=("C1",),
            methods=("st_fast",),
            temperatures_c=(40.0, 70.0, 100.0),
            grid_size=6,
        )
        report = run_batch(full, cache=cache)
        # The pre-cached 40C cell is served from cache; only the two
        # missing temperatures are solved through the fused group.
        assert report["totals"]["cache_hits"] == 1
        assert report["execution"]["fused_cells"] == 2
        reference = run_batch(full, use_cache=False, fuse=False)
        for a, b in zip(report["cells"], reference["cells"], strict=True):
            assert a["lifetime_hours"] == b["lifetime_hours"]

    def test_second_run_all_cached_no_fusion_work(self, cache):
        run_batch(FUSED_SPEC, cache=cache)
        report = run_batch(FUSED_SPEC, cache=cache)
        assert report["totals"]["cache_hits"] == report["totals"]["cells"]
        assert report["execution"]["fused_cells"] == 0


SCHEDULE = {
    "phases": [
        {"name": "burnin", "duration_hours": 500.0, "temperature_c": 110.0},
        {"name": "field"},
    ],
    "mechanisms": ["obd", "nbti"],
}

SCENARIO_SPEC = SweepSpec(
    designs=("C1",),
    methods=("st_fast",),
    grid_size=6,
    scenario=SCHEDULE,
)


class TestScenarioSweeps:
    def test_spec_canonicalises_schedule(self):
        from repro.scenario import Scenario

        assert (
            SCENARIO_SPEC.scenario == Scenario.from_dict(SCHEDULE).as_dict()
        )

    def test_scenario_requires_st_fast_only(self):
        with pytest.raises(ConfigurationError, match="st_fast"):
            SweepSpec(
                designs=("C1",),
                methods=("st_fast", "guard"),
                scenario=SCHEDULE,
            )

    def test_cells_match_scenario_analyzer(self):
        from repro.scenario import Scenario, ScenarioAnalyzer
        from repro.service import JobRequest

        report = run_batch(SCENARIO_SPEC, use_cache=False)
        analyzer = JobRequest.from_dict(
            {"kind": "lifetime", "design": "C1", "grid": 6}
        ).build_analyzer()
        reference = ScenarioAnalyzer(
            analyzer, Scenario.from_dict(SCHEDULE)
        ).lifetime(SCENARIO_SPEC.ppm)
        assert report["cells"][0]["lifetime_hours"] == reference

    def test_second_run_served_from_cache(self, cache):
        first = run_batch(SCENARIO_SPEC, backend=SerialBackend(), cache=cache)
        assert first["totals"]["cache_hits"] == 0
        with obs.enabled():
            second = run_batch(
                SCENARIO_SPEC, backend=SerialBackend(), cache=cache
            )
            hits = obs.get_counter("exec.cache.hit")
            misses = obs.get_counter("exec.cache.miss")
        assert second["totals"]["cache_hits"] == second["totals"]["cells"]
        # Same acceptance bar as steady sweeps: >= 90 % cache hits.
        assert hits / (hits + misses) >= 0.9
        for a, b in zip(first["cells"], second["cells"], strict=True):
            assert a["lifetime_hours"] == b["lifetime_hours"]
            assert b["cached"]

    def test_schedule_is_part_of_the_fingerprint(self, cache):
        run_batch(SCENARIO_SPEC, cache=cache)
        hotter = SweepSpec(
            designs=("C1",),
            methods=("st_fast",),
            grid_size=6,
            scenario={
                **SCHEDULE,
                "phases": [
                    {**SCHEDULE["phases"][0], "temperature_c": 120.0},
                    SCHEDULE["phases"][1],
                ],
            },
        )
        report = run_batch(hotter, cache=cache)
        assert report["totals"]["cache_hits"] == 0

    def test_steady_cells_ignore_scenario_machinery(self, cache):
        # A plain sweep's fingerprints must not change just because the
        # spec gained an (unset) scenario field — pre-existing caches
        # keep working.
        run_batch(SPEC, backend=SerialBackend(), cache=cache)
        report = run_batch(SPEC, backend=SerialBackend(), cache=cache)
        assert report["totals"]["cache_hits"] == report["totals"]["cells"]

    def test_scenario_cells_never_fuse(self):
        spec = SweepSpec(
            designs=("C1",),
            methods=("st_fast",),
            temperatures_c=(40.0, 70.0, 100.0),
            grid_size=6,
            scenario=SCHEDULE,
        )
        report = run_batch(spec, use_cache=False)
        assert report["execution"]["fused_cells"] == 0
        assert report["totals"]["cells"] == 3
