"""Unit tests for the content-addressed result cache."""

import logging

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.exec import (
    ResultCache,
    default_cache_dir,
    default_shared_cache_dir,
    fingerprint,
)
from repro.exec.cache import get_json_payload, put_json_payload


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestFingerprint:
    def test_stable(self):
        payload = {"a": 1, "b": 2.5, "c": [1, 2], "d": np.arange(4)}
        assert fingerprint(payload) == fingerprint(payload)

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    @pytest.mark.parametrize(
        "a,b",
        [
            ({"x": 1}, {"x": 2}),
            ({"x": 1}, {"y": 1}),
            ({"x": 1.0}, {"x": 1.0000000001}),
            ({"x": None}, {"x": 0}),
            ({"x": [1, 2]}, {"x": [2, 1]}),
            ({"x": np.arange(3)}, {"x": np.arange(4)}),
            ({"x": np.arange(3)}, {"x": np.arange(3).astype(float)}),
            (
                {"x": np.zeros((2, 3))},
                {"x": np.zeros((3, 2))},
            ),
        ],
    )
    def test_any_field_change_changes_key(self, a, b):
        assert fingerprint(a) != fingerprint(b)

    def test_tuple_and_list_equivalent(self):
        assert fingerprint((1, 2)) == fingerprint([1, 2])

    def test_numpy_scalars_normalised(self):
        assert fingerprint({"n": np.int64(3)}) == fingerprint({"n": 3})
        assert fingerprint({"f": np.float64(2.5)}) == fingerprint({"f": 2.5})

    def test_unfingerprintable_rejected(self):
        with pytest.raises(ConfigurationError, match="fingerprint"):
            fingerprint({"obj": object()})


class TestGetPut:
    def test_roundtrip_bit_identical(self, cache):
        arrays = {
            "curve": np.linspace(0.0, 1.0, 17),
            "count": np.asarray(42),
        }
        key = fingerprint({"kind": "test"})
        cache.put(key, arrays, meta={"note": "hello"})
        out = cache.get(key)
        assert set(out) == {"curve", "count"}
        np.testing.assert_array_equal(out["curve"], arrays["curve"])
        assert out["curve"].dtype == arrays["curve"].dtype
        assert cache.get_meta(key)["note"] == "hello"

    def test_miss_returns_none(self, cache):
        with obs.enabled():
            assert cache.get(fingerprint("absent")) is None
            assert obs.get_counter("exec.cache.miss") == 1.0

    def test_hit_counted(self, cache):
        key = fingerprint("x")
        cache.put(key, {"v": np.ones(3)})
        with obs.enabled():
            assert cache.get(key) is not None
            assert obs.get_counter("exec.cache.hit") == 1.0

    def test_corrupted_entry_is_a_miss_with_warning(self, cache, caplog):
        key = fingerprint("will-corrupt")
        path = cache.put(key, {"v": np.ones(3)})
        path.write_bytes(b"not an npz at all")
        with obs.enabled(), caplog.at_level(
            logging.WARNING, logger="repro.exec.cache"
        ):
            assert cache.get(key) is None
            assert obs.get_counter("exec.cache.corrupt") == 1.0
            assert obs.get_counter("exec.cache.miss") == 1.0
        assert any("corrupted" in r.getMessage() for r in caplog.records)
        # Recompute-and-overwrite restores the entry.
        cache.put(key, {"v": np.ones(3)})
        np.testing.assert_array_equal(cache.get(key)["v"], np.ones(3))

    def test_missing_meta_treated_as_corrupt(self, cache, tmp_path):
        key = fingerprint("no-meta")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        np.savez(path, v=np.ones(2))  # bypasses put(): no __meta__
        assert cache.get(key) is None

    def test_reserved_array_name_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="reserved"):
            cache.put(fingerprint("k"), {"__meta__": np.ones(1)})

    def test_malformed_key_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="malformed"):
            cache.path_for("ab")


class TestMaintenance:
    def test_stats_and_clear(self, cache):
        for i in range(3):
            cache.put(fingerprint(i), {"v": np.full(4, i)})
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert stats.as_dict()["entries"] == 3
        assert cache.clear() == 3
        assert cache.stats().entries == 0
        assert cache.clear() == 0

    def test_stats_on_absent_root(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.stats().entries == 0


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro"

    def test_shared_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SHARED_CACHE_DIR", str(tmp_path / "s"))
        assert default_shared_cache_dir() == tmp_path / "s"

    def test_shared_nests_under_local_root(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SHARED_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_shared_cache_dir() == tmp_path / "c" / "shared"


class TestTiers:
    def test_unknown_tier_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cache tier"):
            ResultCache(tmp_path, tier="regional")

    def test_shared_tier_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SHARED_CACHE_DIR", str(tmp_path / "s"))
        shared = ResultCache(tier="shared")
        assert shared.root == tmp_path / "s"
        assert shared.tier == "shared"

    def test_tier_counters_incremented(self, tmp_path):
        shared = ResultCache(tmp_path / "shared", tier="shared")
        key = fingerprint("tiered")
        with obs.enabled():
            assert shared.get(key) is None
            shared.put(key, {"v": np.ones(2)})
            assert shared.get(key) is not None
            assert obs.get_counter("exec.cache.shared.miss") == 1.0
            assert obs.get_counter("exec.cache.shared.store") == 1.0
            assert obs.get_counter("exec.cache.shared.hit") == 1.0
            # The local tier family is untouched by shared-tier traffic,
            # while the legacy untiered counters see everything.
            assert obs.get_counter("exec.cache.local.hit") == 0.0
            assert obs.get_counter("exec.cache.hit") == 1.0
            assert obs.get_counter("exec.cache.miss") == 1.0

    def test_stats_report_tier_and_hit_ratio(self, tmp_path):
        shared = ResultCache(tmp_path / "shared", tier="shared")
        key = fingerprint("ratio")
        with obs.enabled():
            shared.get(key)  # miss
            shared.put(key, {"v": np.ones(1)})
            shared.get(key)  # hit
            shared.get(key)  # hit
            shared.get(fingerprint("other"))  # miss
            stats = shared.stats()
        assert stats.tier == "shared"
        assert stats.hits == 2
        assert stats.misses == 2
        assert stats.hit_ratio == 0.5
        doc = stats.as_dict()
        assert doc["tier"] == "shared"
        assert doc["hit_ratio"] == 0.5

    def test_untouched_tier_reports_zero_ratio(self, tmp_path):
        stats = ResultCache(tmp_path / "c").stats()
        assert stats.hit_ratio == 0.0
        assert stats.tier == "local"


class TestJsonPayloadEntries:
    def test_round_trip(self, cache):
        key = fingerprint("payload")
        payload = {"lifetime_hours": 1.5e5, "shards": {"0": [1, 2]}}
        put_json_payload(cache, key, payload, meta={"kind": "test"})
        assert get_json_payload(cache, key) == payload
        assert cache.get_meta(key)["kind"] == "test"

    def test_none_cache_is_a_no_op(self):
        put_json_payload(None, fingerprint("x"), {"a": 1})
        assert get_json_payload(None, fingerprint("x")) is None

    def test_miss_returns_none(self, cache):
        assert get_json_payload(cache, fingerprint("absent")) is None

    def test_entry_without_payload_field_is_a_miss(self, cache):
        key = fingerprint("arrays-only")
        cache.put(key, {"v": np.ones(2)})
        assert get_json_payload(cache, key) is None

    def test_invalid_json_counts_corrupt(self, cache):
        key = fingerprint("bad-json")
        cache.put(key, {"payload_json": np.array("{not json")})
        with obs.enabled():
            assert get_json_payload(cache, key) is None
            assert obs.get_counter("exec.cache.corrupt") == 1.0
