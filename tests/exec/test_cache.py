"""Unit tests for the content-addressed result cache."""

import logging

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.exec import ResultCache, default_cache_dir, fingerprint


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestFingerprint:
    def test_stable(self):
        payload = {"a": 1, "b": 2.5, "c": [1, 2], "d": np.arange(4)}
        assert fingerprint(payload) == fingerprint(payload)

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    @pytest.mark.parametrize(
        "a,b",
        [
            ({"x": 1}, {"x": 2}),
            ({"x": 1}, {"y": 1}),
            ({"x": 1.0}, {"x": 1.0000000001}),
            ({"x": None}, {"x": 0}),
            ({"x": [1, 2]}, {"x": [2, 1]}),
            ({"x": np.arange(3)}, {"x": np.arange(4)}),
            ({"x": np.arange(3)}, {"x": np.arange(3).astype(float)}),
            (
                {"x": np.zeros((2, 3))},
                {"x": np.zeros((3, 2))},
            ),
        ],
    )
    def test_any_field_change_changes_key(self, a, b):
        assert fingerprint(a) != fingerprint(b)

    def test_tuple_and_list_equivalent(self):
        assert fingerprint((1, 2)) == fingerprint([1, 2])

    def test_numpy_scalars_normalised(self):
        assert fingerprint({"n": np.int64(3)}) == fingerprint({"n": 3})
        assert fingerprint({"f": np.float64(2.5)}) == fingerprint({"f": 2.5})

    def test_unfingerprintable_rejected(self):
        with pytest.raises(ConfigurationError, match="fingerprint"):
            fingerprint({"obj": object()})


class TestGetPut:
    def test_roundtrip_bit_identical(self, cache):
        arrays = {
            "curve": np.linspace(0.0, 1.0, 17),
            "count": np.asarray(42),
        }
        key = fingerprint({"kind": "test"})
        cache.put(key, arrays, meta={"note": "hello"})
        out = cache.get(key)
        assert set(out) == {"curve", "count"}
        np.testing.assert_array_equal(out["curve"], arrays["curve"])
        assert out["curve"].dtype == arrays["curve"].dtype
        assert cache.get_meta(key)["note"] == "hello"

    def test_miss_returns_none(self, cache):
        with obs.enabled():
            assert cache.get(fingerprint("absent")) is None
            assert obs.get_counter("exec.cache.miss") == 1.0

    def test_hit_counted(self, cache):
        key = fingerprint("x")
        cache.put(key, {"v": np.ones(3)})
        with obs.enabled():
            assert cache.get(key) is not None
            assert obs.get_counter("exec.cache.hit") == 1.0

    def test_corrupted_entry_is_a_miss_with_warning(self, cache, caplog):
        key = fingerprint("will-corrupt")
        path = cache.put(key, {"v": np.ones(3)})
        path.write_bytes(b"not an npz at all")
        with obs.enabled(), caplog.at_level(
            logging.WARNING, logger="repro.exec.cache"
        ):
            assert cache.get(key) is None
            assert obs.get_counter("exec.cache.corrupt") == 1.0
            assert obs.get_counter("exec.cache.miss") == 1.0
        assert any("corrupted" in r.getMessage() for r in caplog.records)
        # Recompute-and-overwrite restores the entry.
        cache.put(key, {"v": np.ones(3)})
        np.testing.assert_array_equal(cache.get(key)["v"], np.ones(3))

    def test_missing_meta_treated_as_corrupt(self, cache, tmp_path):
        key = fingerprint("no-meta")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        np.savez(path, v=np.ones(2))  # bypasses put(): no __meta__
        assert cache.get(key) is None

    def test_reserved_array_name_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="reserved"):
            cache.put(fingerprint("k"), {"__meta__": np.ones(1)})

    def test_malformed_key_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="malformed"):
            cache.path_for("ab")


class TestMaintenance:
    def test_stats_and_clear(self, cache):
        for i in range(3):
            cache.put(fingerprint(i), {"v": np.full(4, i)})
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert stats.as_dict()["entries"] == 3
        assert cache.clear() == 3
        assert cache.stats().entries == 0
        assert cache.clear() == 0

    def test_stats_on_absent_root(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.stats().entries == 0


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro"
