"""Cooperative cancellation of sharded runs: interrupt, flush, resume."""

import numpy as np
import pytest

from repro import obs
from repro.errors import ExecutionInterrupted
from repro.exec import Checkpoint, SerialBackend, run_sharded
from repro.exec.sharding import plan_shards

META = {"kind": "cancel-test", "n": 12}


def _shard_value(shard):
    return {"v": np.asarray(shard.index * 10)}


def _cancel_after(n):
    """A cancel_check that flips to True after n polls."""
    polls = {"count": 0}

    def check():
        polls["count"] += 1
        return polls["count"] > n

    return check


class TestCancelCheck:
    def test_cancel_raises_execution_interrupted(self):
        shards = plan_shards(12, 0, shard_size=2)
        with pytest.raises(ExecutionInterrupted, match="cancelled after 3"):
            run_sharded(
                SerialBackend(), _shard_value, shards, cancel_check=_cancel_after(2)
            )

    def test_cancel_counts_metric(self):
        shards = plan_shards(8, 0, shard_size=2)
        with obs.enabled():
            with pytest.raises(ExecutionInterrupted):
                run_sharded(
                    SerialBackend(),
                    _shard_value,
                    shards,
                    cancel_check=_cancel_after(0),
                )
            assert obs.get_counter("exec.cancelled_runs") == 1.0

    def test_never_true_runs_to_completion(self):
        shards = plan_shards(6, 0, shard_size=2)
        done = run_sharded(
            SerialBackend(), _shard_value, shards, cancel_check=lambda: False
        )
        assert set(done) == {0, 1, 2}

    def test_cancel_flushes_checkpoint(self, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        shards = plan_shards(12, 0, shard_size=2)
        ckpt = Checkpoint(path, META, save_every=100)
        with pytest.raises(ExecutionInterrupted):
            run_sharded(
                SerialBackend(),
                _shard_value,
                shards,
                checkpoint=ckpt,
                cancel_check=_cancel_after(3),
            )
        restored = Checkpoint(path, META).load()
        assert len(restored) == 4
        for index, payload in restored.items():
            assert int(payload["v"]) == index * 10


class TestResumeAfterCancel:
    def test_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        shards = plan_shards(12, 7, shard_size=2)
        reference = run_sharded(SerialBackend(), _shard_value, shards)
        with pytest.raises(ExecutionInterrupted):
            run_sharded(
                SerialBackend(),
                _shard_value,
                shards,
                checkpoint=Checkpoint(path, META, save_every=1),
                cancel_check=_cancel_after(2),
            )
        with obs.enabled():
            resumed = run_sharded(
                SerialBackend(),
                _shard_value,
                shards,
                checkpoint=Checkpoint(path, META, save_every=1),
            )
            assert obs.get_counter("exec.checkpoint.resumed_shards") > 0
        assert set(resumed) == set(reference)
        for index in reference:
            np.testing.assert_array_equal(resumed[index]["v"], reference[index]["v"])


class TestAnalyzerCancellation:
    def test_mc_lifetime_cancel_and_resume(self, tmp_path):
        from repro.chip.benchmarks import make_benchmark
        from repro.core.analyzer import AnalysisConfig, ReliabilityAnalyzer

        path = tmp_path / "mc.ckpt.npz"
        analyzer = ReliabilityAnalyzer(
            make_benchmark("C1"), config=AnalysisConfig(grid_size=6)
        )
        reference = analyzer.mc_lifetime(10.0, n_chips=200, seed=3)
        with pytest.raises(ExecutionInterrupted):
            analyzer.mc_lifetime(
                10.0,
                n_chips=200,
                seed=3,
                checkpoint_path=str(path),
                cancel_check=_cancel_after(1),
            )
        assert path.exists()
        resumed = analyzer.mc_lifetime(
            10.0, n_chips=200, seed=3, checkpoint_path=str(path)
        )
        assert resumed == reference
