"""Unit tests for checkpoint/resume of sharded runs."""

import logging

import numpy as np
import pytest

from repro import obs
from repro.exec import Checkpoint, SerialBackend, run_sharded
from repro.exec.sharding import plan_shards

META = {"kind": "test", "n": 5}


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "run.ckpt.npz"


def _payload(i):
    return {"total": np.full(3, float(i)), "n": np.asarray(i)}


class TestRoundTrip:
    def test_flush_and_load(self, path):
        ckpt = Checkpoint(path, META, save_every=100)
        ckpt.add(0, _payload(0))
        ckpt.add(2, _payload(2))
        ckpt.flush()
        restored = Checkpoint(path, META).load()
        assert set(restored) == {0, 2}
        np.testing.assert_array_equal(restored[2]["total"], np.full(3, 2.0))
        assert int(restored[0]["n"]) == 0

    def test_save_every_batches_writes(self, path):
        ckpt = Checkpoint(path, META, save_every=3)
        ckpt.add(0, _payload(0))
        ckpt.add(1, _payload(1))
        assert not path.exists()
        ckpt.add(2, _payload(2))
        assert path.exists()

    def test_empty_flush_writes_nothing(self, path):
        Checkpoint(path, META).flush()
        assert not path.exists()

    def test_clear_removes_file(self, path):
        ckpt = Checkpoint(path, META, save_every=1)
        ckpt.add(0, _payload(0))
        ckpt.clear()
        assert not path.exists()
        assert ckpt.completed == set()

    def test_load_counts_resumed_shards(self, path):
        ckpt = Checkpoint(path, META, save_every=1)
        ckpt.add(0, _payload(0))
        ckpt.add(1, _payload(1))
        with obs.enabled():
            Checkpoint(path, META).load()
            assert obs.get_counter("exec.checkpoint.resumed_shards") == 2.0


class TestStaleness:
    def test_meta_mismatch_rejected(self, path, caplog):
        ckpt = Checkpoint(path, META, save_every=1)
        ckpt.add(0, _payload(0))
        other = Checkpoint(path, {"kind": "test", "n": 6})
        with obs.enabled(), caplog.at_level(
            logging.WARNING, logger="repro.exec.checkpoint"
        ):
            assert other.load() == {}
            assert obs.get_counter("exec.checkpoint.stale") == 1.0
        assert any("stale" in r.getMessage() for r in caplog.records)

    def test_unreadable_file_rejected(self, path):
        path.write_bytes(b"garbage")
        with obs.enabled():
            assert Checkpoint(path, META).load() == {}
            assert obs.get_counter("exec.checkpoint.stale") == 1.0

    def test_absent_file_loads_empty(self, path):
        assert Checkpoint(path, META).load() == {}


def _shard_value(shard):
    return {"v": np.asarray(shard.index * 10)}


class TestRunShardedIntegration:
    def test_completed_shards_skipped_on_resume(self, path):
        shards = plan_shards(8, 0, shard_size=2)
        ckpt = Checkpoint(path, META, save_every=1)
        for shard in shards[:2]:
            ckpt.add(shard.index, {"v": np.asarray(-1)})
        resumed = Checkpoint(path, META, save_every=1)
        done = run_sharded(SerialBackend(), _shard_value, shards, checkpoint=resumed)
        # Restored shards keep their checkpointed payloads; the rest ran.
        assert int(done[0]["v"]) == -1
        assert int(done[1]["v"]) == -1
        assert int(done[3]["v"]) == 30

    def test_run_flushes_on_worker_failure(self, path):
        shards = plan_shards(6, 0, shard_size=2)

        def flaky(shard):
            if shard.index == 2:
                raise RuntimeError("boom")
            return _shard_value(shard)

        ckpt = Checkpoint(path, META, save_every=100)
        with pytest.raises(RuntimeError, match="boom"):
            run_sharded(SerialBackend(), flaky, shards, checkpoint=ckpt)
        restored = Checkpoint(path, META).load()
        assert set(restored) == {0, 1}
