"""Unit tests for deterministic seed sharding."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec import DEFAULT_SHARD_SIZE, plan_shards, resolve_seed_sequence


class TestPlanShards:
    def test_covers_every_item_exactly_once(self):
        shards = plan_shards(201, 0, shard_size=64)
        assert [s.size for s in shards] == [64, 64, 64, 9]
        assert [s.start for s in shards] == [0, 64, 128, 192]
        assert [s.stop for s in shards] == [64, 128, 192, 201]
        assert [s.index for s in shards] == [0, 1, 2, 3]

    def test_single_partial_shard(self):
        (shard,) = plan_shards(10, 0, shard_size=64)
        assert shard.size == 10
        assert shard.start == 0

    def test_default_shard_size(self):
        shards = plan_shards(DEFAULT_SHARD_SIZE * 2, 0)
        assert len(shards) == 2

    def test_same_root_same_streams(self):
        a = plan_shards(100, 7, shard_size=32)
        b = plan_shards(100, 7, shard_size=32)
        for sa, sb in zip(a, b, strict=True):
            np.testing.assert_array_equal(
                sa.rng().standard_normal(8), sb.rng().standard_normal(8)
            )

    def test_different_roots_differ(self):
        a = plan_shards(64, 1, shard_size=64)[0]
        b = plan_shards(64, 2, shard_size=64)[0]
        assert not np.array_equal(
            a.rng().standard_normal(8), b.rng().standard_normal(8)
        )

    def test_shards_mutually_independent(self):
        a, b = plan_shards(128, 3, shard_size=64)
        assert not np.array_equal(
            a.rng().standard_normal(8), b.rng().standard_normal(8)
        )

    def test_rng_is_fresh_per_call(self):
        shard = plan_shards(8, 11, shard_size=8)[0]
        np.testing.assert_array_equal(
            shard.rng().standard_normal(4), shard.rng().standard_normal(4)
        )

    def test_repr(self):
        shard = plan_shards(8, 0, shard_size=8)[0]
        assert "Shard(index=0" in repr(shard)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_bad_item_count(self, bad):
        with pytest.raises(ConfigurationError, match="n_items"):
            plan_shards(bad, 0)

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ConfigurationError, match="shard_size"):
            plan_shards(10, 0, shard_size=0)


class TestResolveSeedSequence:
    def test_int_is_stable(self):
        a = resolve_seed_sequence(42)
        b = resolve_seed_sequence(42)
        assert a.entropy == b.entropy

    def test_seed_sequence_passthrough(self):
        root = np.random.SeedSequence(9)
        assert resolve_seed_sequence(root) is root

    def test_generator_draws_fresh_entropy(self):
        gen = np.random.default_rng(0)
        a = resolve_seed_sequence(gen)
        b = resolve_seed_sequence(gen)
        assert a.entropy != b.entropy

    def test_generator_reproducible_from_seed(self):
        a = resolve_seed_sequence(np.random.default_rng(5))
        b = resolve_seed_sequence(np.random.default_rng(5))
        assert a.entropy == b.entropy

    @pytest.mark.parametrize("bad", [True, -3, 1.5, "seed", None])
    def test_rejects_non_seeds(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_seed_sequence(bad)
