"""Shared fleet-test fixtures: one small request, its serial baseline."""

import pytest

from repro.payloads import dump_payload
from repro.service.requests import JobRequest, run_job

#: Small enough to run in seconds, sharded enough to exercise grouping
#: (shard_size 64 -> 3 shards for 160 chips).
REQUEST_DOC = {
    "kind": "lifetime",
    "design": "C1",
    "grid": 6,
    "methods": ["st_fast", "mc"],
    "mc_chips": 160,
    "seed": 7,
}


@pytest.fixture(scope="session")
def mc_request() -> JobRequest:
    return JobRequest.from_dict(dict(REQUEST_DOC))


@pytest.fixture(scope="session")
def serial_bytes(mc_request) -> str:
    """The serial (in-process) result the fleet must match byte for byte."""
    return dump_payload(run_job(mc_request))
