"""HttpClient/BackoffPolicy: schedule, Retry-After, failure contract."""

import email.message
import io
import random
import urllib.error

import pytest

from repro.errors import WorkerUnavailable
from repro.fleet.client import BackoffPolicy, HttpClient, HttpResponse


class FixedRandom(random.Random):
    """random() always returns the same value -> exact delay assertions."""

    def __init__(self, value):
        super().__init__(0)
        self._value = value

    def random(self):
        return self._value


def _response(status=200, body=b"{}", headers=None):
    return HttpResponse(status=status, body=body, headers=dict(headers or {}))


class ScriptedSend:
    """Replaces HttpClient._send with a scripted outcome sequence."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, method, url, body, headers):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _client(outcomes, **kwargs):
    sleeps = []
    kwargs.setdefault("rng", FixedRandom(0.0))
    client = HttpClient(sleep=sleeps.append, **kwargs)
    script = ScriptedSend(outcomes)
    client._send = script
    return client, script, sleeps


class TestBackoffPolicy:
    def test_exponential_schedule_with_jitter(self):
        policy = BackoffPolicy(base_s=0.25, factor=2.0, max_s=8.0, jitter=0.25)
        rng = FixedRandom(1.0)
        delays = [policy.delay_s(attempt, rng) for attempt in range(6)]
        # base * factor**n, capped at max_s, times (1 + jitter*1.0).
        assert delays == pytest.approx(
            [0.25 * 1.25, 0.5 * 1.25, 1.0 * 1.25, 2.0 * 1.25, 4.0 * 1.25, 8.0 * 1.25]
        )

    def test_zero_jitter_is_deterministic(self):
        policy = BackoffPolicy(base_s=1.0, factor=3.0, max_s=100.0, jitter=0.0)
        rng = FixedRandom(0.7)
        assert [policy.delay_s(n, rng) for n in range(3)] == [1.0, 3.0, 9.0]

    def test_retry_after_overrides_and_is_capped(self):
        policy = BackoffPolicy(retry_after_cap_s=30.0, jitter=0.0)
        rng = FixedRandom(0.0)
        assert policy.delay_s(0, rng, retry_after_s=12.0) == 12.0
        assert policy.delay_s(0, rng, retry_after_s=600.0) == 30.0


class TestHttpResponse:
    def test_json_decodes_body(self):
        assert _response(body=b'{"a": 1}').json() == {"a": 1}

    def test_retry_after_parsing(self):
        assert _response(headers={"retry-after": "3"}).retry_after_s == 3.0
        assert _response(headers={"retry-after": "bogus"}).retry_after_s is None
        assert _response(headers={"retry-after": "-1"}).retry_after_s is None
        assert _response().retry_after_s is None


class TestHttpClientRetries:
    def test_connection_errors_retry_then_succeed(self):
        ok = _response()
        client, script, sleeps = _client(
            [urllib.error.URLError("refused"), ConnectionResetError(), ok],
            policy=BackoffPolicy(base_s=0.25, factor=2.0, jitter=0.0),
        )
        assert client.request("GET", "http://w/readyz") is ok
        assert script.calls == 3
        assert sleeps == [0.25, 0.5]

    def test_exhausted_connection_errors_raise_worker_unavailable(self):
        client, script, sleeps = _client(
            [urllib.error.URLError("down")] * 3,
            policy=BackoffPolicy(retries=2, base_s=0.1, jitter=0.0),
        )
        with pytest.raises(WorkerUnavailable) as info:
            client.request("GET", "http://w/x")
        assert info.value.url == "http://w/x"
        assert info.value.attempts == 3
        assert script.calls == 3
        assert len(sleeps) == 2

    def test_retry_status_honours_retry_after(self):
        shed = _response(429, headers={"retry-after": "2"})
        ok = _response()
        client, script, sleeps = _client(
            [shed, ok], policy=BackoffPolicy(base_s=0.25, jitter=0.0)
        )
        assert client.request("POST", "http://w/v1/jobs") is ok
        assert sleeps == [2.0]

    def test_exhausted_retry_statuses_return_last_response(self):
        shed = _response(503)
        client, script, _sleeps = _client(
            [shed] * 3, policy=BackoffPolicy(retries=2, base_s=0.01, jitter=0.0)
        )
        assert client.request("GET", "http://w/x") is shed
        assert script.calls == 3

    def test_empty_retry_statuses_passes_shed_through(self):
        # The load generator's configuration: a 429 is a measurement.
        shed = _response(429)
        client, script, sleeps = _client([shed], retry_statuses=())
        assert client.request("POST", "http://w/v1/jobs") is shed
        assert script.calls == 1
        assert sleeps == []


class TestWireLevel:
    def test_http_error_status_is_a_response(self, monkeypatch):
        headers = email.message.Message()
        headers["Retry-After"] = "1"

        def fake_urlopen(request, timeout):
            raise urllib.error.HTTPError(
                request.full_url, 429, "Too Many", headers, io.BytesIO(b"shed")
            )

        monkeypatch.setattr(
            "urllib.request.urlopen", fake_urlopen
        )
        client = HttpClient(retry_statuses=())
        response = client.request("GET", "http://w/x")
        assert response.status == 429
        assert response.body == b"shed"
        assert response.retry_after_s == 1.0

    def test_timeout_is_always_passed(self, monkeypatch):
        seen = {}

        class FakeRaw(io.BytesIO):
            status = 200
            headers = email.message.Message()

        def fake_urlopen(request, timeout):
            seen["timeout"] = timeout
            return FakeRaw(b"{}")

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        HttpClient(timeout_s=12.5).request("GET", "http://w/x")
        assert seen["timeout"] == 12.5
