"""FleetCoordinator: byte-identity, failover, resume, shared cache."""

import pytest

from repro.errors import FleetError
from repro.exec.cache import ResultCache
from repro.fleet import FakeTransport, FleetCoordinator
from repro.payloads import dump_payload
from repro.service.requests import JobRequest


def _coordinator(workers, tmp_path, transport=None, **kwargs):
    kwargs.setdefault(
        "shared_cache", ResultCache(tmp_path / "shared", tier="shared")
    )
    return FleetCoordinator(
        workers, transport=transport or FakeTransport(), **kwargs
    )


class TestByteIdentity:
    def test_multi_worker_matches_serial(
        self, mc_request, serial_bytes, tmp_path
    ):
        coordinator = _coordinator(
            ["http://a", "http://b", "http://c"], tmp_path, group_size=1
        )
        assert dump_payload(coordinator.run(mc_request)) == serial_bytes
        stats = coordinator.last_run_stats
        assert stats["shards"] == 3
        assert stats["groups_completed"] == 3
        assert stats["workers_lost"] == 0

    def test_single_worker_one_group_matches_serial(
        self, mc_request, serial_bytes, tmp_path
    ):
        coordinator = _coordinator(["http://a"], tmp_path, group_size=64)
        assert dump_payload(coordinator.run(mc_request)) == serial_bytes

    def test_worker_killed_mid_run_still_matches_serial(
        self, mc_request, serial_bytes, tmp_path
    ):
        # Deterministic mid-run kill: worker a blocks until b has
        # completed one group and died on its second, so b's requeued
        # group is always really reassigned.
        import threading

        from repro.errors import WorkerUnavailable

        class MidRunKill(FakeTransport):
            def __init__(self):
                super().__init__(kill_schedule={"http://b": 1})
                self.b_dead = threading.Event()

            def run_shard_group(self, base_url, request_doc):
                if base_url == "http://a":
                    assert self.b_dead.wait(30.0)
                try:
                    return super().run_shard_group(base_url, request_doc)
                except WorkerUnavailable:
                    self.b_dead.set()
                    raise

        coordinator = _coordinator(
            ["http://a", "http://b"], tmp_path, MidRunKill(), group_size=1
        )
        assert dump_payload(coordinator.run(mc_request)) == serial_bytes
        stats = coordinator.last_run_stats
        assert stats["workers_lost"] == 1
        assert stats["groups_reassigned"] == 1

    def test_worker_dying_after_peers_go_idle_does_not_hang(
        self, mc_request, serial_bytes, tmp_path
    ):
        # Regression: dispatcher threads used to *exit* when the queue
        # went empty while a peer still held the last in-flight group.
        # If that peer then died, its requeued group had no thread left
        # to run it and the run hung forever.  Idle dispatchers now wait
        # and pick the group up.
        import threading
        import time

        from repro.errors import WorkerUnavailable

        class DiesHoldingLastGroup(FakeTransport):
            """b grabs one group and dies only after a drained the rest."""

            def __init__(self):
                super().__init__()
                self.b_holding = threading.Event()
                self.a_drained = threading.Event()
                self.a_completed = 0

            def run_shard_group(self, base_url, request_doc):
                if base_url == "http://b":
                    self.b_holding.set()
                    assert self.a_drained.wait(30.0)
                    # Let a's dispatcher see the empty queue and go
                    # idle before the group is requeued.
                    time.sleep(0.2)
                    self.dead.add(base_url)
                    raise WorkerUnavailable(
                        "worker b died holding the last group",
                        url=base_url,
                    )
                assert self.b_holding.wait(30.0)
                payload = super().run_shard_group(base_url, request_doc)
                self.a_completed += 1
                if self.a_completed == 2:
                    self.a_drained.set()
                return payload

        coordinator = _coordinator(
            ["http://a", "http://b"],
            tmp_path,
            DiesHoldingLastGroup(),
            group_size=1,
            shared_cache=False,
        )
        result = {}
        runner = threading.Thread(
            target=lambda: result.update(payload=coordinator.run(mc_request)),
            daemon=True,
        )
        runner.start()
        runner.join(timeout=60.0)
        assert not runner.is_alive(), "fleet run hung after late worker death"
        assert dump_payload(result["payload"]) == serial_bytes
        stats = coordinator.last_run_stats
        assert stats["workers_lost"] == 1
        assert stats["groups_reassigned"] == 1
        assert stats["groups_completed"] == 3

    def test_worker_dead_from_the_start_still_matches_serial(
        self, mc_request, serial_bytes, tmp_path
    ):
        transport = FakeTransport(kill_schedule={"http://a": 0})
        coordinator = _coordinator(
            ["http://a", "http://b"], tmp_path, transport, group_size=1
        )
        assert dump_payload(coordinator.run(mc_request)) == serial_bytes


class TestFailover:
    def test_all_workers_dead_raises(self, mc_request, tmp_path):
        transport = FakeTransport(
            kill_schedule={"http://a": 0, "http://b": 0}
        )
        coordinator = _coordinator(
            ["http://a", "http://b"], tmp_path, transport, group_size=1
        )
        with pytest.raises(FleetError, match="unreachable"):
            coordinator.run(mc_request)

    def test_checkpoint_resume_after_total_loss(
        self, mc_request, serial_bytes, tmp_path
    ):
        checkpoint = tmp_path / "fleet.ckpt.npz"
        # First fleet: one worker finishes one group, then everyone dies.
        transport = FakeTransport(
            kill_schedule={"http://a": 1, "http://b": 0}
        )
        first = _coordinator(
            ["http://a", "http://b"],
            tmp_path,
            transport,
            group_size=1,
            shared_cache=False,
            checkpoint_path=str(checkpoint),
        )
        with pytest.raises(FleetError):
            first.run(mc_request)
        assert checkpoint.exists()
        # A fresh fleet resumes the survivors' checkpoint and only runs
        # the missing groups.
        rescue_transport = FakeTransport()
        rescue = _coordinator(
            ["http://c"],
            tmp_path,
            rescue_transport,
            group_size=1,
            shared_cache=False,
            checkpoint_path=str(checkpoint),
        )
        assert dump_payload(rescue.run(mc_request)) == serial_bytes
        assert rescue_transport.calls["http://c"] == 2
        assert not checkpoint.exists()

    def test_group_size_must_be_positive(self):
        with pytest.raises(FleetError, match="group_size"):
            FleetCoordinator(["http://a"], group_size=0)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(FleetError, match="at least one worker"):
            FleetCoordinator([])

    def test_invalid_shared_cache_raises_fleet_error(self):
        with pytest.raises(FleetError, match="shared_cache"):
            FleetCoordinator(["http://a"], shared_cache=123)

    def test_path_shared_cache_becomes_shared_tier(self, tmp_path):
        coordinator = FleetCoordinator(
            ["http://a"], shared_cache=str(tmp_path / "s")
        )
        assert coordinator.shared_cache.tier == "shared"
        assert coordinator.shared_cache.root == tmp_path / "s"


class TestSharedCache:
    def test_rerun_is_served_from_shared_cache(
        self, mc_request, serial_bytes, tmp_path
    ):
        cache = ResultCache(tmp_path / "shared", tier="shared")
        first = FleetCoordinator(
            ["http://a"],
            transport=FakeTransport(),
            group_size=1,
            shared_cache=cache,
        )
        first.run(mc_request)
        assert first.last_run_stats["shared_cache_hits"] == 0
        rerun_transport = FakeTransport()
        rerun = FleetCoordinator(
            ["http://a"],
            transport=rerun_transport,
            group_size=1,
            shared_cache=cache,
        )
        assert dump_payload(rerun.run(mc_request)) == serial_bytes
        stats = rerun.last_run_stats
        assert stats["shared_cache_hits"] == stats["groups"] == 3
        assert rerun_transport.calls == {}

    def test_method_variants_share_cache_entries(self, mc_request, tmp_path):
        # The group documents exclude the method list (the partial sums
        # do not depend on it), so requests differing only in methods
        # reuse every shard-group result.
        cache = ResultCache(tmp_path / "shared", tier="shared")
        FleetCoordinator(
            ["http://a"],
            transport=FakeTransport(),
            group_size=1,
            shared_cache=cache,
        ).run(mc_request)
        other_doc = {
            k: v for k, v in mc_request.as_dict().items() if v is not None
        }
        other_doc["methods"] = ["mc"]
        other = FleetCoordinator(
            ["http://a"],
            transport=FakeTransport(),
            group_size=1,
            shared_cache=cache,
        )
        other.run(JobRequest.from_dict(other_doc))
        assert other.last_run_stats["shared_cache_hits"] == 3


class TestLocalFallback:
    def test_request_without_mc_runs_locally(self, tmp_path):
        from repro.service.requests import run_job

        request = JobRequest.from_dict(
            {"kind": "lifetime", "design": "C1", "grid": 6}
        )
        transport = FakeTransport()
        coordinator = _coordinator(["http://a"], tmp_path, transport)
        payload = coordinator.run(request)
        assert payload == run_job(request)
        assert transport.calls == {}

    def test_scenario_job_runs_locally_byte_identical(self, tmp_path):
        from repro.payloads import dump_payload
        from repro.service.requests import run_job

        request = JobRequest.from_dict(
            {
                "kind": "scenario",
                "design": "C1",
                "grid": 6,
                "scenario": {
                    "phases": [
                        {
                            "name": "burnin",
                            "duration_hours": 500.0,
                            "temperature_c": 110.0,
                        },
                        {"name": "field"},
                    ],
                    "mechanisms": ["obd", "nbti", "em"],
                },
            }
        )
        transport = FakeTransport()
        coordinator = _coordinator(["http://a"], tmp_path, transport)
        payload = coordinator.run(request)
        # No MC shards to distribute: the scenario evaluates locally and
        # must match the service worker's document byte for byte.
        assert dump_payload(payload) == dump_payload(run_job(request))
        assert transport.calls == {}


class TestStatus:
    def test_status_reports_dead_and_ready(self, tmp_path):
        transport = FakeTransport(kill_schedule={"http://b": 0})
        transport.dead.add("http://b")
        coordinator = _coordinator(
            ["http://a", "http://b"], tmp_path, transport
        )
        report = coordinator.status()
        assert [w["ready"] for w in report] == [True, False]
        assert report[0]["info"]["status"] == "ready"
        assert report[1]["info"] is None


class TestMergeGuards:
    def test_missing_shard_in_payload_fails(self, mc_request, tmp_path):
        class LyingTransport(FakeTransport):
            def run_shard_group(self, base_url, request_doc):
                payload, traces = super().run_shard_group(
                    base_url, request_doc
                )
                payload = dict(payload)
                payload["shards"] = {}
                return payload, traces

        coordinator = _coordinator(
            ["http://a"],
            tmp_path,
            LyingTransport(),
            group_size=1,
            shared_cache=False,
        )
        with pytest.raises(FleetError, match="missing shard"):
            coordinator.run(mc_request)
