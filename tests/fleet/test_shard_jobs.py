"""The worker-side ``mc_shards`` job: validation, evaluation, service."""

import json
import time

import numpy as np
import pytest

from repro.core.montecarlo import reduce_curve_payloads
from repro.errors import ServiceError
from repro.service.requests import JobRequest, run_job

SHARD_DOC = {
    "kind": "mc_shards",
    "design": "C1",
    "grid": 6,
    "mc_chips": 160,
    "seed": 7,
    "shards": [0, 2],
    "times": [1.0e5, 5.0e5, 1.0e6],
}


class TestValidation:
    def test_round_trips_through_as_dict(self):
        request = JobRequest.from_dict(dict(SHARD_DOC))
        assert request.shards == (0, 2)
        assert request.times == (1.0e5, 5.0e5, 1.0e6)
        assert JobRequest.from_dict(request.as_dict()) == request

    def test_uses_mc(self):
        assert JobRequest.from_dict(dict(SHARD_DOC)).uses_mc

    @pytest.mark.parametrize(
        "patch, match",
        [
            ({"shards": None}, "require 'shards'"),
            ({"shards": []}, "require 'shards'"),
            ({"shards": [0, 0]}, "must not repeat"),
            ({"shards": [-1]}, "non-negative integer"),
            ({"shards": [0, True]}, "non-negative integer"),
            ({"times": None}, "require 'times'"),
            ({"times": []}, "require 'times'"),
            ({"times": [1.0, -2.0]}, "finite non-negative"),
            ({"times": [float("inf")]}, "finite non-negative"),
        ],
    )
    def test_rejects_malformed_fields(self, patch, match):
        doc = dict(SHARD_DOC, **patch)
        doc = {k: v for k, v in doc.items() if v is not None}
        with pytest.raises(ServiceError, match=match):
            JobRequest.from_dict(doc)

    def test_shards_rejected_on_other_kinds(self):
        doc = {
            "kind": "lifetime",
            "design": "C1",
            "shards": [0],
            "times": [1.0],
        }
        with pytest.raises(ServiceError, match="mc_shards jobs only"):
            JobRequest.from_dict(doc)

    def test_distinct_shard_subsets_get_distinct_keys(self):
        base = JobRequest.from_dict(dict(SHARD_DOC))
        other = JobRequest.from_dict(dict(SHARD_DOC, shards=[1]))
        assert base.key != other.key


class TestEvaluation:
    def test_payload_matches_direct_engine_evaluation(self):
        request = JobRequest.from_dict(dict(SHARD_DOC))
        payload = run_job(request)
        analyzer = request.build_analyzer()
        direct = analyzer.mc_shard_payloads(
            np.asarray(SHARD_DOC["times"]),
            n_chips=160,
            seed=7,
            shard_indices=[0, 2],
        )
        assert sorted(payload["shards"]) == ["0", "2"]
        for index, fields in direct.items():
            shipped = payload["shards"][str(index)]
            assert shipped["total"] == np.asarray(fields["total"]).tolist()
            assert (
                shipped["total_sq"] == np.asarray(fields["total_sq"]).tolist()
            )
            assert shipped["n_valid"] == int(fields["n_valid"])
            assert shipped["n_bad"] == int(fields["n_bad"])

    def test_json_round_trip_reduces_bit_identically(self):
        # Partial sums survive JSON serialisation exactly, so a reduce
        # over round-tripped payloads equals the in-process curve.
        request = JobRequest.from_dict(
            dict(SHARD_DOC, shards=[0, 1, 2], mc_chips=160)
        )
        payload = json.loads(json.dumps(run_job(request)))
        times = np.asarray(SHARD_DOC["times"])
        merged = {
            int(index): fields
            for index, fields in payload["shards"].items()
        }
        via_json = reduce_curve_payloads(times, merged, expected_shards=3)
        analyzer = request.build_analyzer()
        direct = analyzer.mc_reliability_curve(times, n_chips=160, seed=7)
        np.testing.assert_array_equal(via_json.reliability, direct.reliability)
        np.testing.assert_array_equal(via_json.std_error, direct.std_error)

    def test_out_of_plan_shard_index_fails_the_job(self):
        from repro.errors import ConfigurationError

        request = JobRequest.from_dict(dict(SHARD_DOC, shards=[99]))
        with pytest.raises(ConfigurationError, match="outside the plan"):
            run_job(request)


class TestProgress:
    def test_total_comes_from_explicit_shard_list(self, monkeypatch):
        from repro.service import jobs as jobs_mod
        from repro.service.jobs import Job, JobManager

        manager = JobManager(workers=1, max_queue=1)
        request = JobRequest.from_dict(dict(SHARD_DOC))
        job = Job(
            id="j1",
            request=request,
            client="t",
            key=request.key,
            checkpoint_path="x.npz",
        )
        monkeypatch.setattr(
            jobs_mod, "_checkpoint_shards_done", lambda path: 1
        )
        assert manager.progress(job) == {"shards_done": 1, "shards_total": 2}


class TestServiceIntegration:
    def test_submit_poll_fetch_over_the_job_api(self):
        from repro.service import JobManager, ReliabilityService

        manager = JobManager(workers=1, max_queue=4)
        manager.start()
        try:
            service = ReliabilityService(manager)
            body = json.dumps(SHARD_DOC).encode("utf-8")
            response = service.handle("POST", "/v1/jobs", body, "t")
            assert response.status == 201
            job_id = json.loads(response.body)["id"]
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                doc = json.loads(
                    service.handle(
                        "GET", f"/v1/jobs/{job_id}", b"", "t"
                    ).body
                )
                if doc["state"] in ("done", "failed"):
                    break
                time.sleep(0.02)
            assert doc["state"] == "done"
            # When checkpointing is on, progress totals come from the
            # explicit shard list (a done job has no live checkpoint).
            progress = doc.get("progress")
            if progress is not None:
                assert progress["shards_total"] == 2
            result = service.handle(
                "GET", f"/v1/jobs/{job_id}/result", b"", "t"
            )
            payload = json.loads(result.body)
            assert payload == run_job(JobRequest.from_dict(dict(SHARD_DOC)))
        finally:
            manager.shutdown(drain_timeout=10.0)
