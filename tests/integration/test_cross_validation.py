"""Systematic cross-validation of the three statistical evaluators.

The paper's core correctness claim is that st_fast, st_mc and hybrid are
interchangeable estimates of the same ensemble reliability. This suite
sweeps the modelling space — variation magnitude, component split,
correlation distance, grid resolution, temperature spread — and asserts
the evaluators stay mutually consistent and the physical orderings hold at
every point.
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    AnalysisConfig,
    OBDModel,
    ReliabilityAnalyzer,
    VariationBudget,
    make_synthetic_design,
)

_BASE_CONFIG = AnalysisConfig(grid_size=6, st_mc_samples=6000)


def _analyzer(budget=None, config=None, temps=None, floorplan=None):
    if floorplan is None:
        floorplan = make_synthetic_design("XV", 8000, 5, 2.5, seed=99)
    return ReliabilityAnalyzer(
        floorplan,
        budget=budget,
        config=config if config is not None else _BASE_CONFIG,
        block_temperatures=temps,
    )


def _assert_methods_agree(analyzer, rel=0.05):
    lt_fast = analyzer.lifetime(10, method="st_fast")
    lt_mc = analyzer.lifetime(10, method="st_mc")
    lt_hyb = analyzer.lifetime(10, method="hybrid")
    assert lt_mc == pytest.approx(lt_fast, rel=rel)
    assert lt_hyb == pytest.approx(lt_fast, rel=rel)
    return lt_fast


class TestAcrossVariationMagnitude:
    @pytest.mark.parametrize("three_sigma", [0.01, 0.02, 0.04, 0.08])
    def test_methods_agree(self, three_sigma):
        budget = VariationBudget(three_sigma_ratio=three_sigma)
        _assert_methods_agree(_analyzer(budget=budget))

    def test_lifetime_monotone_in_variation(self):
        lifetimes = []
        for three_sigma in (0.01, 0.04, 0.08):
            budget = VariationBudget(three_sigma_ratio=three_sigma)
            lifetimes.append(_analyzer(budget=budget).lifetime(10))
        assert lifetimes[0] > lifetimes[1] > lifetimes[2]

    def test_guard_gap_grows_with_variation(self):
        gaps = []
        for three_sigma in (0.01, 0.08):
            budget = VariationBudget(three_sigma_ratio=three_sigma)
            analyzer = _analyzer(budget=budget)
            gap = 1.0 - analyzer.lifetime(10, "guard") / analyzer.lifetime(10)
            gaps.append(gap)
        assert gaps[1] > gaps[0]


class TestAcrossComponentSplit:
    @pytest.mark.parametrize(
        "split",
        [
            (0.8, 0.1, 0.1),
            (0.1, 0.8, 0.1),
            (0.1, 0.1, 0.8),
            (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
        ],
    )
    def test_methods_agree(self, split):
        g, s, i = split
        budget = VariationBudget(
            global_fraction=g, spatial_fraction=s, independent_fraction=i
        )
        _assert_methods_agree(_analyzer(budget=budget))

    def test_ppm_lifetime_depends_only_on_total_variance(self):
        """In the rare-failure (ppm) regime the chip failure probability
        linearises to the device-level expectation, so only the *total*
        thickness variance matters — the component split is irrelevant.
        (A notable consequence of the model, verified here; the split
        matters for the failure-time *dispersion*, next test.)"""
        lifetimes = []
        for split in ((0.9, 0.05, 0.05), (0.05, 0.05, 0.9)):
            budget = VariationBudget(
                global_fraction=split[0],
                spatial_fraction=split[1],
                independent_fraction=split[2],
            )
            lifetimes.append(_analyzer(budget=budget).lifetime(1))
        assert lifetimes[0] == pytest.approx(lifetimes[1], rel=0.01)

    def test_global_heavy_split_widens_failure_dispersion(self):
        """Global variation moves whole chips together: good chips and bad
        chips, i.e. a wider chip failure-time distribution than the
        self-averaging independent component produces."""
        spreads = {}
        for name, split in {
            "global": (0.9, 0.05, 0.05),
            "independent": (0.05, 0.05, 0.9),
        }.items():
            budget = VariationBudget(
                global_fraction=split[0],
                spatial_fraction=split[1],
                independent_fraction=split[2],
            )
            analyzer = _analyzer(budget=budget)
            failure_times = analyzer.mc_failure_times(n_chips=800, seed=4)
            log_t = np.log(failure_times)
            spreads[name] = float(
                np.quantile(log_t, 0.9) - np.quantile(log_t, 0.1)
            )
        assert spreads["global"] > spreads["independent"]


class TestAcrossCorrelationStructure:
    @pytest.mark.parametrize("rho", [0.1, 0.5, 1.5])
    def test_methods_agree(self, rho):
        config = dataclasses.replace(_BASE_CONFIG, rho_dist=rho)
        _assert_methods_agree(_analyzer(config=config))

    @pytest.mark.parametrize("grid", [3, 8, 14])
    def test_methods_agree_across_grid_resolution(self, grid):
        config = dataclasses.replace(_BASE_CONFIG, grid_size=grid)
        _assert_methods_agree(_analyzer(config=config))

    @pytest.mark.parametrize("kernel", ["exponential", "gaussian", "linear"])
    def test_methods_agree_across_kernels(self, kernel):
        config = dataclasses.replace(_BASE_CONFIG, kernel=kernel)
        _assert_methods_agree(_analyzer(config=config))


class TestAcrossTemperatureProfiles:
    @pytest.mark.parametrize("spread", [0.0, 10.0, 30.0])
    def test_methods_agree(self, spread):
        temps = 85.0 + np.linspace(-spread / 2.0, spread / 2.0, 5)
        _assert_methods_agree(_analyzer(temps=temps))

    def test_uniform_profile_equals_temp_unaware(self):
        """With a flat thermal profile the temperature-unaware analysis is
        identical to the aware one."""
        temps = np.full(5, 90.0)
        analyzer = _analyzer(temps=temps)
        lt_aware = analyzer.lifetime(10, "st_fast")
        lt_unaware = analyzer.lifetime(10, "temp_unaware")
        assert lt_unaware == pytest.approx(lt_aware, rel=1e-9)

    def test_unaware_error_grows_with_spread(self):
        errors = []
        for spread in (5.0, 30.0):
            temps = 85.0 + np.linspace(-spread / 2.0, spread / 2.0, 5)
            analyzer = _analyzer(temps=temps)
            errors.append(
                1.0
                - analyzer.lifetime(10, "temp_unaware")
                / analyzer.lifetime(10, "st_fast")
            )
        assert errors[1] > errors[0]


class TestAcrossObdCalibrations:
    @pytest.mark.parametrize("b_ref", [0.7, 1.4, 2.0])
    def test_methods_agree(self, b_ref):
        floorplan = make_synthetic_design("XV", 8000, 5, 2.5, seed=99)
        analyzer = ReliabilityAnalyzer(
            floorplan,
            obd_model=OBDModel(b_ref=b_ref),
            config=_BASE_CONFIG,
        )
        _assert_methods_agree(analyzer)

    def test_ordering_invariant_under_calibration(self):
        """guard <= temp_unaware <= st_fast lifetimes at every b."""
        floorplan = make_synthetic_design("XV", 8000, 5, 2.5, seed=99)
        for b_ref in (0.7, 2.0):
            analyzer = ReliabilityAnalyzer(
                floorplan,
                obd_model=OBDModel(b_ref=b_ref),
                config=_BASE_CONFIG,
            )
            lt = {
                m: analyzer.lifetime(10, m)
                for m in ("guard", "temp_unaware", "st_fast")
            }
            assert lt["guard"] <= lt["temp_unaware"] <= lt["st_fast"]
