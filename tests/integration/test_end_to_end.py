"""End-to-end integration tests: full flow on small designs.

These exercise the whole pipeline the way a user would — floorplan in,
lifetimes out — and check the paper's qualitative conclusions at reduced
scale (full scale lives in ``benchmarks/``).
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    ActivityProfile,
    AnalysisConfig,
    OBDModel,
    ReliabilityAnalyzer,
    VariationBudget,
    make_manycore,
    make_synthetic_design,
    solve_power_thermal,
)


@pytest.fixture(scope="module")
def config():
    return AnalysisConfig(grid_size=8, st_mc_samples=4000, mc_chunk_size=50)


@pytest.fixture(scope="module")
def design():
    return make_synthetic_design("E2E", 20_000, 6, 3.0, seed=7)


@pytest.fixture(scope="module")
def analyzer(design, config):
    return ReliabilityAnalyzer(design, config=config)


class TestFullFlow:
    def test_thermal_feeds_reliability(self, analyzer):
        # Temperatures vary block to block, and so do the Weibull params.
        temps = analyzer.block_temperatures
        alphas = np.array([b.alpha for b in analyzer.blocks])
        assert np.ptp(temps) > 1.0
        assert np.ptp(alphas) > 0.0
        order_temp = np.argsort(temps)
        order_alpha = np.argsort(alphas)[::-1]
        np.testing.assert_array_equal(order_temp, order_alpha)

    def test_method_agreement_table3_shape(self, analyzer):
        """The Table III shape at reduced scale: statistical methods agree
        with MC to a few percent; guard-band is ~half."""
        lt = {
            m: analyzer.lifetime(10, method=m)
            for m in ("st_fast", "st_mc", "hybrid", "temp_unaware", "guard")
        }
        lt_mc = analyzer.mc_lifetime(10, n_chips=600, seed=3)
        for method in ("st_fast", "st_mc", "hybrid"):
            error = abs(lt[method] - lt_mc) / lt_mc
            assert error < 0.05, f"{method}: {error:.3f}"
        # The guard error band widens with design size (Table III shows
        # 42-56 % at 50K-840K devices); this 20K design sits below.
        guard_error = 1.0 - lt["guard"] / lt_mc
        assert 0.2 < guard_error < 0.7
        unaware_error = 1.0 - lt["temp_unaware"] / lt_mc
        assert 0.02 < unaware_error < guard_error

    def test_failure_time_mc_agrees_in_bulk(self, analyzer):
        ft = analyzer.mc_failure_times(n_chips=2000, seed=9)
        t20 = float(np.quantile(ft, 0.2))
        curve = analyzer.mc_reliability_curve(
            np.array([t20]), n_chips=400, seed=10
        )
        assert 1.0 - curve.reliability[0] == pytest.approx(0.2, abs=0.05)

    def test_reliability_curves_ordered(self, analyzer):
        t = analyzer.lifetime(100, method="guard")
        times = np.logspace(np.log10(t) - 0.5, np.log10(t) + 1.0, 10)
        r_fast = np.asarray(analyzer.reliability(times, method="st_fast"))
        r_unaware = np.asarray(
            analyzer.reliability(times, method="temp_unaware")
        )
        r_guard = np.asarray(analyzer.reliability(times, method="guard"))
        assert np.all(r_guard <= r_unaware + 1e-12)
        assert np.all(r_unaware <= r_fast + 1e-12)


class TestWorkloadScenario:
    def test_power_thermal_reliability_chain(self, config):
        """Wattch-like power -> HotSpotLite -> OBD analysis, per workload.

        Uses architecturally named blocks so the activity presets
        differentiate (generic names all classify as "other")."""
        from repro import Block, Floorplan, Rect

        design = Floorplan(
            width=3.0,
            height=3.0,
            blocks=(
                Block("intexec", Rect(0.0, 0.0, 1.5, 1.5), 6000),
                Block("fpmul", Rect(1.5, 0.0, 1.5, 1.5), 5000),
                Block("icache", Rect(0.0, 1.5, 1.5, 1.5), 6000),
                Block("bpred", Rect(1.5, 1.5, 1.5, 1.5), 3000),
            ),
        )
        lifetimes = {}
        for preset in ("idle", "typical", "int_heavy"):
            profile = ActivityProfile.preset(preset, design)
            solution = solve_power_thermal(design, profile)
            analyzer = ReliabilityAnalyzer(
                solution.floorplan,
                config=config,
                block_temperatures=solution.block_temperatures,
            )
            lifetimes[preset] = analyzer.lifetime(10)
        assert lifetimes["idle"] > lifetimes["typical"]
        assert lifetimes["typical"] > lifetimes["int_heavy"]


class TestManycoreScenario:
    def test_hot_cores_dominate_failure(self, config):
        fp = make_manycore(
            n_cores_x=3,
            n_cores_y=3,
            die_size=6.0,
            devices_per_core=2000,
            active_cores=(4,),
        )
        analyzer = ReliabilityAnalyzer(fp, config=config)
        t = analyzer.lifetime(100)
        failures = analyzer.st_fast.block_failure_probabilities(
            np.array([t])
        )[:, 0]
        # The active centre core is the weakest link.
        assert int(np.argmax(failures)) == 4
        assert failures[4] > 2.0 * np.median(failures)


class TestVoltageScaling:
    def test_voltage_headroom_tradeoff(self, design, config):
        """The paper's motivation: accurate analysis buys supply-voltage
        headroom. The statistical lifetime at a raised Vdd can still beat
        the guard-band lifetime at nominal Vdd."""
        nominal = ReliabilityAnalyzer(design, config=config)
        raised = ReliabilityAnalyzer(
            design, config=dataclasses.replace(config, vdd=1.21)
        )
        lt_guard_nominal = nominal.lifetime(10, method="guard")
        lt_stat_raised = raised.lifetime(10, method="st_fast")
        assert lt_stat_raised > lt_guard_nominal


class TestQuadtreeVariant:
    def test_quadtree_correlation_model_plugs_in(self, design, config, budget):
        """The quad-tree model feeds the same downstream analysis."""
        from repro import build_quadtree_model
        from repro.core.blod import characterize_blods
        from repro.core.ensemble import BlockReliability, StFastAnalyzer

        analyzer = ReliabilityAnalyzer(design, config=config)
        grid = analyzer.grid
        qt_model = build_quadtree_model(budget, grid, levels=3)
        blods = characterize_blods(design, grid, qt_model)
        blocks = [
            BlockReliability(blod=blod, alpha=b.alpha, b=b.b)
            for blod, b in zip(blods, analyzer.blocks, strict=True)
        ]
        qt_fast = StFastAnalyzer(blocks)
        t = analyzer.lifetime(10)
        # Different correlation structure, same ballpark answer.
        r_grid = float(analyzer.reliability(t))
        r_qt = float(qt_fast.reliability(t))
        assert abs((1.0 - r_qt) / (1.0 - r_grid) - 1.0) < 0.5
