"""Unit tests for JSON setup serialisation."""

import json

import pytest

from repro import AnalysisConfig, OBDModel, VariationBudget
from repro.errors import ConfigurationError
from repro.io.design_json import (
    FORMAT_VERSION,
    floorplan_from_dict,
    floorplan_to_dict,
    load_setup,
    save_setup,
    setup_from_dict,
    setup_to_dict,
)


class TestFloorplanRoundTrip:
    def test_exact_round_trip(self, small_floorplan):
        rebuilt = floorplan_from_dict(floorplan_to_dict(small_floorplan))
        assert rebuilt.width == small_floorplan.width
        assert rebuilt.block_names == small_floorplan.block_names
        for a, b in zip(small_floorplan.blocks, rebuilt.blocks, strict=True):
            assert a.rect == b.rect
            assert a.n_devices == b.n_devices
            assert a.avg_device_area == b.avg_device_area
            assert a.power == b.power

    def test_json_serialisable(self, small_floorplan):
        text = json.dumps(floorplan_to_dict(small_floorplan))
        rebuilt = floorplan_from_dict(json.loads(text))
        assert rebuilt.n_devices == small_floorplan.n_devices

    def test_missing_field_rejected(self, small_floorplan):
        data = floorplan_to_dict(small_floorplan)
        del data["blocks"][0]["n_devices"]
        with pytest.raises(ConfigurationError, match="missing field"):
            floorplan_from_dict(data)


class TestSetupRoundTrip:
    def test_full_round_trip(self, small_floorplan):
        budget = VariationBudget(three_sigma_ratio=0.05)
        obd = OBDModel(alpha_ref=1e9, b_ref=1.1)
        config = AnalysisConfig(grid_size=7, rho_dist=0.3, vdd=1.15)
        data = setup_to_dict(small_floorplan, budget, obd, config)
        fp2, budget2, obd2, config2 = setup_from_dict(data)
        assert fp2.n_devices == small_floorplan.n_devices
        assert budget2 == budget
        assert obd2 == obd
        assert config2 == config

    def test_defaults_filled(self, small_floorplan):
        data = setup_to_dict(small_floorplan)
        _fp, budget, obd, config = setup_from_dict(data)
        assert budget == VariationBudget.table2()
        assert obd == OBDModel()
        assert config == AnalysisConfig()

    def test_version_checked(self, small_floorplan):
        data = setup_to_dict(small_floorplan)
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            setup_from_dict(data)

    def test_file_round_trip(self, tmp_path, small_floorplan):
        path = tmp_path / "setup.json"
        save_setup(path, small_floorplan, config=AnalysisConfig(grid_size=5))
        fp, _budget, _obd, config = load_setup(path)
        assert fp.block_names == small_floorplan.block_names
        assert config.grid_size == 5

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid"):
            load_setup(path)

    def test_analysis_equivalence(self, tmp_path, small_floorplan, fast_config):
        """A reloaded setup produces the identical analysis result."""
        from repro import ReliabilityAnalyzer

        path = tmp_path / "setup.json"
        temps_source = ReliabilityAnalyzer(small_floorplan, config=fast_config)
        save_setup(path, small_floorplan, config=fast_config)
        fp, budget, obd, config = load_setup(path)
        reloaded = ReliabilityAnalyzer(
            fp, budget=budget, obd_model=obd, config=config
        )
        assert reloaded.lifetime(10) == pytest.approx(
            temps_source.lifetime(10), rel=1e-12
        )
