"""Failure-injection tests: corrupted or hostile inputs must fail loudly.

A production tool's I/O layer sees truncated files, wrong formats and
stale archives; every such case must raise a library error (never crash
with a bare traceback from numpy/json internals, never silently produce
wrong numbers).
"""

import json
import zipfile

import numpy as np
import pytest

from repro.core.hybrid import HybridAnalyzer
from repro.errors import ConfigurationError, ReproError
from repro.io.design_json import load_setup
from repro.io.hotspot_files import parse_flp, read_flp
from repro.io.tables import load_hybrid_tables, parse_obd_table


class TestCorruptedFlp:
    @pytest.mark.parametrize(
        "text",
        [
            "b -1e-3 1e-3 0 0\n",  # negative width
            "b 1e-3 1e-3 nan 0\n",  # NaN coordinate -> invalid rect math
            "b 1e-3\n",  # truncated row
        ],
    )
    def test_geometry_errors_are_library_errors(self, text):
        with pytest.raises(ReproError):
            parse_flp(text)

    def test_overlapping_blocks_rejected(self):
        text = (
            "a 2e-3 2e-3 0 0\n"
            "b 2e-3 2e-3 1e-3 1e-3\n"  # overlaps a
        )
        with pytest.raises(ReproError, match="overlap"):
            parse_flp(text)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_flp(tmp_path / "nope.flp")


class TestCorruptedSetups:
    def test_truncated_json(self, tmp_path):
        path = tmp_path / "cut.json"
        path.write_text('{"format_version": 1, "floorplan": ')
        with pytest.raises(ConfigurationError):
            load_setup(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"format_version": 1, "flooplan": {}}))
        with pytest.raises((ConfigurationError, KeyError)):
            load_setup(path)

    def test_hostile_values(self, tmp_path, small_floorplan):
        from repro.io.design_json import setup_to_dict

        data = setup_to_dict(small_floorplan)
        data["budget"]["three_sigma_ratio"] = -1.0
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_setup(path)


class TestCorruptedObdTables:
    @pytest.mark.parametrize(
        "text",
        [
            "",  # empty
            "temperature_c,alpha_hours,b_per_nm\n",  # header only
            "temperature_c,alpha_hours,b_per_nm\n100,-1,1\n50,1,1\n",
        ],
    )
    def test_invalid_tables_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_obd_table(text)


class TestStaleLutArchives:
    def test_truncated_archive(self, tmp_path, small_analyzer):
        path = tmp_path / "lut.npz"
        path.write_bytes(b"PK\x03\x04 garbage")
        with pytest.raises(zipfile.BadZipFile):
            load_hybrid_tables(path, small_analyzer.blocks)

    def test_shape_tampered_archive(self, tmp_path, small_analyzer):
        blocks = small_analyzer.blocks
        hybrid = HybridAnalyzer(blocks, n_alpha=10, n_b=10)
        path = tmp_path / "lut.npz"
        np.savez_compressed(
            path,
            log_t_axis=hybrid.log_t_axis,
            b_axis=hybrid.b_axis,
            tables=hybrid.tables[:, :5, :],  # truncated tables
            alphas=np.array([b.alpha for b in blocks]),
            bs=np.array([b.b for b in blocks]),
            names=np.array([b.name for b in blocks]),
        )
        with pytest.raises(ConfigurationError, match="shape"):
            load_hybrid_tables(path, blocks)
