"""Unit tests for HotSpot .flp and .ptrace file support."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io.hotspot_files import (
    apply_ptrace_sample,
    format_flp,
    format_ptrace,
    parse_flp,
    parse_ptrace,
    read_flp,
    read_ptrace,
    write_flp,
    write_ptrace,
)

_SAMPLE_FLP = """
# a 2 mm x 2 mm die with two blocks (dimensions in metres)
core\t2.0e-3\t1.0e-3\t0.0\t0.0
cache\t2.0e-3\t1.0e-3\t0.0\t1.0e-3   # top half
"""

_SAMPLE_PTRACE = """
core\tcache
2.0\t0.5
3.0\t0.6
"""


class TestFlpParsing:
    def test_geometry_converted_to_mm(self):
        fp = parse_flp(_SAMPLE_FLP)
        assert fp.width == pytest.approx(2.0)
        assert fp.height == pytest.approx(2.0)
        core = fp.block("core")
        assert core.rect.width == pytest.approx(2.0)
        assert core.rect.height == pytest.approx(1.0)
        cache = fp.block("cache")
        assert cache.rect.y == pytest.approx(1.0)

    def test_device_density_estimate(self):
        fp = parse_flp(_SAMPLE_FLP, device_density=1000.0)
        # Each block is 2 mm^2 -> 2000 devices.
        assert fp.block("core").n_devices == 2000

    def test_explicit_device_counts(self):
        fp = parse_flp(_SAMPLE_FLP, device_counts={"core": 5555})
        assert fp.block("core").n_devices == 5555
        assert fp.block("cache").n_devices > 0

    def test_comments_and_blanks_ignored(self):
        fp = parse_flp("# only\n\nb 1e-3 1e-3 0 0\n")
        assert fp.n_blocks == 1

    def test_rejects_short_lines(self):
        with pytest.raises(ConfigurationError, match="expected"):
            parse_flp("b 1e-3 1e-3 0\n")

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError, match="non-numeric"):
            parse_flp("b w h x y\n")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="no blocks"):
            parse_flp("# nothing\n")

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            parse_flp(_SAMPLE_FLP, device_density=0.0)


class TestFlpRoundTrip:
    def test_write_read_round_trip(self, tmp_path, small_floorplan):
        path = tmp_path / "design.flp"
        write_flp(small_floorplan, path)
        counts = {
            block.name: block.n_devices for block in small_floorplan.blocks
        }
        loaded = read_flp(path, device_counts=counts)
        assert loaded.block_names == small_floorplan.block_names
        for original, roundtrip in zip(small_floorplan.blocks, loaded.blocks, strict=True):
            assert roundtrip.rect.x == pytest.approx(original.rect.x, abs=1e-6)
            assert roundtrip.rect.area == pytest.approx(
                original.rect.area, rel=1e-6
            )
            assert roundtrip.n_devices == original.n_devices

    def test_format_is_hotspot_shaped(self, small_floorplan):
        text = format_flp(small_floorplan)
        lines = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert len(lines) == small_floorplan.n_blocks
        parts = lines[0].split("\t")
        assert len(parts) == 5


class TestPtrace:
    def test_parse(self):
        names, powers = parse_ptrace(_SAMPLE_PTRACE)
        assert names == ["core", "cache"]
        np.testing.assert_allclose(powers, [[2.0, 0.5], [3.0, 0.6]])

    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.ptrace"
        write_ptrace(["a", "b"], np.array([[1.0, 2.0]]), path)
        names, powers = read_ptrace(path)
        assert names == ["a", "b"]
        np.testing.assert_allclose(powers, [[1.0, 2.0]])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            parse_ptrace("a b\n1.0\n")

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            parse_ptrace("a\n-1.0\n")

    def test_rejects_headerless(self):
        with pytest.raises(ConfigurationError):
            parse_ptrace("a\n")

    def test_format_shape_checked(self):
        with pytest.raises(ConfigurationError):
            format_ptrace(["a", "b"], np.array([[1.0]]))


class TestApplyPtrace:
    def test_applies_row(self):
        fp = parse_flp(_SAMPLE_FLP)
        names, powers = parse_ptrace(_SAMPLE_PTRACE)
        updated = apply_ptrace_sample(fp, names, powers, sample=1)
        assert updated.block("core").power == pytest.approx(3.0)
        assert updated.block("cache").power == pytest.approx(0.6)

    def test_rejects_unknown_names(self):
        fp = parse_flp(_SAMPLE_FLP)
        with pytest.raises(ConfigurationError):
            apply_ptrace_sample(fp, ["zzz"], np.array([[1.0]]))

    def test_rejects_bad_sample_index(self):
        fp = parse_flp(_SAMPLE_FLP)
        names, powers = parse_ptrace(_SAMPLE_PTRACE)
        with pytest.raises(ConfigurationError):
            apply_ptrace_sample(fp, names, powers, sample=5)


class TestEndToEnd:
    def test_flp_to_reliability(self, tmp_path):
        """A HotSpot floorplan drives the full analysis."""
        from repro import AnalysisConfig, ReliabilityAnalyzer

        path = tmp_path / "chip.flp"
        path.write_text(
            "hot\t1.0e-3\t1.0e-3\t0.0\t0.0\n"
            "cold\t1.0e-3\t1.0e-3\t1.0e-3\t0.0\n"
        )
        fp = read_flp(path, device_density=3000.0)
        fp = fp.with_powers({"hot": 1.5, "cold": 0.1})
        analyzer = ReliabilityAnalyzer(
            fp, config=AnalysisConfig(grid_size=4)
        )
        assert analyzer.lifetime(10) > 0.0
