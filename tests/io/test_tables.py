"""Unit tests for OBD characterisation tables and hybrid LUT persistence."""

import numpy as np
import pytest

from repro import OBDModel, TabulatedOBDModel
from repro.core.hybrid import HybridAnalyzer
from repro.errors import ConfigurationError
from repro.io.tables import (
    format_obd_table,
    load_hybrid_tables,
    load_obd_table,
    parse_obd_table,
    save_hybrid_tables,
    save_obd_table,
)


@pytest.fixture()
def table_model(obd_model):
    return TabulatedOBDModel.from_model(
        obd_model, np.linspace(50.0, 120.0, 8)
    )


class TestObdTableCsv:
    def test_round_trip(self, table_model):
        rebuilt = parse_obd_table(format_obd_table(table_model))
        np.testing.assert_allclose(
            rebuilt.temperatures, table_model.temperatures
        )
        np.testing.assert_allclose(
            rebuilt.log_alphas, table_model.log_alphas, rtol=1e-7
        )
        np.testing.assert_allclose(rebuilt.bs, table_model.bs, rtol=1e-7)

    def test_file_round_trip(self, tmp_path, table_model):
        path = tmp_path / "obd.csv"
        save_obd_table(table_model, path)
        rebuilt = load_obd_table(path)
        assert rebuilt.alpha(85.0) == pytest.approx(
            table_model.alpha(85.0), rel=1e-6
        )

    def test_bad_header_rejected(self):
        with pytest.raises(ConfigurationError, match="header"):
            parse_obd_table("a,b,c\n1,2,3\n")

    def test_bad_column_count_rejected(self):
        with pytest.raises(ConfigurationError, match="3 columns"):
            parse_obd_table("temperature_c,alpha_hours,b_per_nm\n1,2\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError, match="non-numeric"):
            parse_obd_table("temperature_c,alpha_hours,b_per_nm\na,b,c\n")


class TestHybridPersistence:
    def test_round_trip_queries_identical(self, tmp_path, small_analyzer):
        blocks = small_analyzer.blocks
        hybrid = HybridAnalyzer(blocks, n_alpha=40, n_b=40)
        path = tmp_path / "tables.npz"
        save_hybrid_tables(hybrid, path)
        restored = load_hybrid_tables(path, blocks)
        t10 = small_analyzer.lifetime(10)
        times = np.array([t10 / 2.0, t10, 2.0 * t10])
        np.testing.assert_array_equal(
            restored.reliability(times), hybrid.reliability(times)
        )

    def test_block_mismatch_rejected(self, tmp_path, small_analyzer):
        blocks = small_analyzer.blocks
        hybrid = HybridAnalyzer(blocks, n_alpha=10, n_b=10)
        path = tmp_path / "tables.npz"
        save_hybrid_tables(hybrid, path)
        with pytest.raises(ConfigurationError, match="match"):
            load_hybrid_tables(path, blocks[::-1])

    def test_profile_override_still_works(self, tmp_path, small_analyzer):
        blocks = small_analyzer.blocks
        hybrid = HybridAnalyzer(blocks, n_alpha=40, n_b=40)
        path = tmp_path / "tables.npz"
        save_hybrid_tables(hybrid, path)
        restored = load_hybrid_tables(path, blocks)
        t10 = small_analyzer.lifetime(10)
        alphas = np.array([b.alpha for b in blocks]) / 2.0
        np.testing.assert_allclose(
            restored.reliability(np.array([t10]), alphas=alphas),
            hybrid.reliability(np.array([t10]), alphas=alphas),
        )
