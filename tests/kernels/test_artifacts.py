"""Cross-request artifact cache: round-trip, recovery, and reuse.

The contract under test (see :mod:`repro.kernels.artifacts`): enabling
the cache can never change results — every entry is a bit-exact ``.npz``
round-trip of what the compute path returns — and every failure mode
(corrupt file, truncated entry, disabled cache, unwritable root) demotes
to a plain recompute.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import ReliabilityAnalyzer, obs
from repro.kernels import use_precision
from repro.kernels.artifacts import (
    ArtifactCache,
    artifact_key,
    get_artifact_cache,
    memoize_artifact,
    use_artifacts,
)


@pytest.fixture()
def artifact_dir(tmp_path, monkeypatch) -> Path:
    """A private artifact root per test (overrides the session fixture)."""
    root = tmp_path / "artifacts"
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE_DIR", str(root))
    return root


def _arrays() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    return {
        "eigvals": rng.standard_normal(8),
        "eigvecs": rng.standard_normal((8, 8)),
        "names": np.array(["a", "b"]),
        "counts": np.array([3, 5], dtype=np.int64),
    }


class TestMemoize:
    def test_round_trip_is_bitwise_identical(self, artifact_dir):
        first = memoize_artifact("unit", {"x": 1}, _arrays)
        second = memoize_artifact(
            "unit", {"x": 1}, lambda: pytest.fail("must not recompute")
        )
        assert set(second) == set(first)
        for name in first:
            assert second[name].dtype == first[name].dtype
            np.testing.assert_array_equal(second[name], first[name])

    def test_counters(self, artifact_dir):
        with obs.enabled():
            memoize_artifact("unit", {"x": 2}, _arrays)
            memoize_artifact("unit", {"x": 2}, _arrays)
            counters = obs.metrics_snapshot()["counters"]
        assert counters["kernels.artifacts.miss"] == 1
        assert counters["kernels.artifacts.store"] == 1
        assert counters["kernels.artifacts.hit"] == 1
        assert counters["kernels.artifacts.local.hit"] == 1

    def test_distinct_payloads_do_not_collide(self, artifact_dir):
        a = memoize_artifact("unit", {"x": 1}, _arrays)
        b = memoize_artifact(
            "unit", {"x": 1.5}, lambda: {"other": np.arange(3, dtype=np.int64)}
        )
        assert set(a) != set(b)
        assert artifact_key("unit", {"x": 1}) != artifact_key(
            "unit", {"x": 1.5}
        )

    def test_corrupt_entry_recomputes(self, artifact_dir):
        memoize_artifact("unit", {"x": 3}, _arrays)
        cache = get_artifact_cache()
        assert cache is not None
        path = cache.path_for(artifact_key("unit", {"x": 3}))
        path.write_bytes(b"not a zip file")
        with obs.enabled():
            recovered = memoize_artifact("unit", {"x": 3}, _arrays)
            counters = obs.metrics_snapshot()["counters"]
        assert counters["kernels.artifacts.corrupt"] == 1
        np.testing.assert_array_equal(recovered["eigvals"], _arrays()["eigvals"])

    def test_truncated_entry_recomputes(self, artifact_dir):
        """An entry missing a ``required`` array name is overwritten."""
        cache = ArtifactCache()
        cache.put(
            artifact_key("unit", {"x": 4}), {"eigvals": np.arange(2.0)}
        )
        out = memoize_artifact(
            "unit", {"x": 4}, _arrays, required=("eigvals", "eigvecs")
        )
        assert "eigvecs" in out
        # ... and the overwrite repaired the stored entry.
        repaired = cache.get(artifact_key("unit", {"x": 4}))
        assert repaired is not None and "eigvecs" in repaired

    def test_disabled_by_switch_and_env(self, artifact_dir, monkeypatch):
        with use_artifacts(False):
            assert get_artifact_cache() is None
            calls = []
            memoize_artifact("unit", {"x": 5}, lambda: (calls.append(1), _arrays())[1])
            memoize_artifact("unit", {"x": 5}, lambda: (calls.append(1), _arrays())[1])
            assert calls == [1, 1]
        assert get_artifact_cache() is not None


class TestAnalyzerReuse:
    def test_second_analyzer_build_hits_and_matches(
        self, artifact_dir, small_floorplan, fast_config
    ):
        cold = ReliabilityAnalyzer(small_floorplan, config=fast_config)
        cold_lifetime = cold.lifetime(10.0, method="st_fast")
        with obs.enabled():
            warm = ReliabilityAnalyzer(small_floorplan, config=fast_config)
            warm_lifetime = warm.lifetime(10.0, method="st_fast")
            counters = obs.metrics_snapshot()["counters"]
        assert counters["kernels.artifacts.hit"] >= 2  # PCA + BLODs
        assert warm_lifetime == cold_lifetime
        np.testing.assert_array_equal(
            warm.canonical.sensitivities, cold.canonical.sensitivities
        )
        for blod_a, blod_b in zip(cold.blods, warm.blods):
            np.testing.assert_array_equal(blod_a.v_matrix, blod_b.v_matrix)

    def test_precision_tiers_do_not_share_hybrid_tables(
        self, artifact_dir, small_floorplan, fast_config
    ):
        ReliabilityAnalyzer(small_floorplan, config=fast_config).hybrid
        with obs.enabled():
            with use_precision("fast32"):
                ReliabilityAnalyzer(
                    small_floorplan, config=fast_config
                ).hybrid
            counters = obs.metrics_snapshot()["counters"]
        # The fast32 build must not be served the float64 tables.
        assert counters["kernels.artifacts.store"] >= 1

    def test_cross_process_reuse(self, artifact_dir, tmp_path):
        """A second process reuses entries the first one stored."""
        script = (
            "import json, numpy as np\n"
            "from repro import ReliabilityAnalyzer, make_synthetic_design, "
            "AnalysisConfig, obs\n"
            "fp = make_synthetic_design(name='X', n_devices=4000, "
            "n_blocks=3, die_size=2.0, seed=3)\n"
            "with obs.enabled():\n"
            "    a = ReliabilityAnalyzer(fp, config=AnalysisConfig("
            "grid_size=6))\n"
            "    lt = a.lifetime(10.0, method='st_fast')\n"
            "    c = obs.metrics_snapshot()['counters']\n"
            "print(json.dumps({'lifetime': lt, "
            "'hits': c.get('kernels.artifacts.hit', 0.0), "
            "'stores': c.get('kernels.artifacts.store', 0.0)}))\n"
        )
        runs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
            )
            import json

            runs.append(json.loads(proc.stdout.strip().splitlines()[-1]))
        assert runs[0]["stores"] >= 2 and runs[0]["hits"] == 0
        assert runs[1]["hits"] >= 2 and runs[1]["stores"] == 0
        assert runs[1]["lifetime"] == runs[0]["lifetime"]
