"""Accuracy gates for the ``fast32`` precision tier.

``fast32`` runs the fused survival tensors and the array-Imhof kernel in
float32 and upcasts at the boundary.  These tests pin the tier's
documented accuracy contract (see ``docs/performance.md``):

==========================  =========================================
quantity                    gate (vs the float64 reference)
==========================  =========================================
survival / reliability      ``<= 5e-6`` absolute (measured ~1e-6)
Imhof survival function     ``<= 1e-6`` absolute (measured ~7e-8)
hybrid table queries        ``<= 5e-6`` absolute (measured ~5e-7)
ppm lifetimes               ``<= 5e-2`` relative (measured ~1e-2; the
                            10-ppm target sits at ``R = 0.99999``, so
                            float32's ~1e-6 reliability noise is a few
                            percent of the failure budget)
==========================  =========================================

``float64`` stays the default; a fast32 run records its tier in the
payload so results are never mistaken for reference numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ReliabilityAnalyzer, obs, payloads
from repro.errors import ConfigurationError
from repro.kernels import (
    PRECISIONS,
    precision,
    set_precision,
    use_precision,
)

SURVIVAL_ATOL = 5e-6
IMHOF_ATOL = 1e-6
HYBRID_ATOL = 5e-6
LIFETIME_RTOL = 5e-2


@pytest.fixture(scope="module")
def times(request):
    analyzer = request.getfixturevalue("small_analyzer")
    center = analyzer.lifetime(10.0, method="guard")
    grid = np.geomspace(center / 100.0, 50.0 * center, 40)
    return np.concatenate([[0.0], grid])


class TestSwitch:
    def test_default_is_float64(self):
        assert precision() == "float64"
        assert PRECISIONS[0] == "float64"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown precision"):
            set_precision("float16")
        assert precision() == "float64"

    def test_context_manager_restores(self):
        with use_precision("fast32"):
            assert precision() == "fast32"
        assert precision() == "float64"

    def test_bad_env_falls_back(self, monkeypatch):
        from repro.kernels.config import _precision_from_env

        monkeypatch.setenv("REPRO_PRECISION", "quad")
        assert _precision_from_env() == "float64"
        monkeypatch.setenv("REPRO_PRECISION", "FAST32")
        assert _precision_from_env() == "fast32"


class TestSurvivalAccuracy:
    @pytest.mark.parametrize("method", ["st_fast", "st_mc", "temp_unaware"])
    def test_reliability_curves(self, small_analyzer, times, method):
        reference = np.atleast_1d(
            small_analyzer.reliability(times, method=method)
        )
        with use_precision("fast32"):
            fast = np.atleast_1d(
                small_analyzer.reliability(times, method=method)
            )
        assert fast.dtype == np.float64  # results stay float64 at the API
        np.testing.assert_allclose(
            fast, reference, rtol=0.0, atol=SURVIVAL_ATOL
        )
        # The t = 0 corner must stay exact in both tiers.
        assert fast[0] == reference[0] == 1.0

    def test_lifetime(self, small_analyzer):
        reference = small_analyzer.lifetime(10.0, method="st_fast")
        with use_precision("fast32"):
            fast = small_analyzer.lifetime(10.0, method="st_fast")
        assert abs(fast - reference) / reference <= LIFETIME_RTOL


class TestHybridAccuracy:
    def test_hybrid_queries(self, small_floorplan, fast_config, times):
        reference_analyzer = ReliabilityAnalyzer(
            small_floorplan, config=fast_config
        )
        reference = np.atleast_1d(
            reference_analyzer.reliability(times, method="hybrid")
        )
        with use_precision("fast32"):
            # Fresh analyzer: the tables themselves build in fast32
            # (cached hybrid tables are keyed by tier, so this never
            # reuses the float64 build).
            fast_analyzer = ReliabilityAnalyzer(
                small_floorplan, config=fast_config
            )
            fast = np.atleast_1d(
                fast_analyzer.reliability(times, method="hybrid")
            )
        np.testing.assert_allclose(fast, reference, rtol=0.0, atol=HYBRID_ATOL)


class TestImhofAccuracy:
    def test_imhof_sf(self, small_analyzer):
        form = small_analyzer.blods[0].v_quadratic_form()
        match = form.chi2_match()
        xs = np.asarray(
            match.ppf(np.linspace(0.05, 0.98, 64, dtype=np.float64))
        )
        reference = form.imhof_sf(xs)
        with use_precision("fast32"):
            fast = form.imhof_sf(xs)
        assert np.asarray(fast).dtype == np.float64
        np.testing.assert_allclose(fast, reference, rtol=0.0, atol=IMHOF_ATOL)


class TestPayloadRecordsTier:
    def test_execution_info(self, small_analyzer):
        assert payloads.execution_info(small_analyzer)["precision"] == "float64"
        with use_precision("fast32"):
            info = payloads.execution_info(small_analyzer)
        assert info["precision"] == "fast32"

    def test_job_request_precision_field(self):
        from repro.service.requests import JobRequest

        request = JobRequest.from_dict(
            {"kind": "lifetime", "design": "C1", "precision": "fast32"}
        )
        assert request.precision == "fast32"
        assert request.as_dict()["precision"] == "fast32"
        # ... and the tier is part of the content address.
        reference = JobRequest.from_dict(
            {"kind": "lifetime", "design": "C1"}
        )
        assert reference.precision == "float64"
        assert reference.key != request.key

    def test_job_request_rejects_unknown_tier(self):
        from repro.errors import ServiceError
        from repro.service.requests import JobRequest

        with pytest.raises(ServiceError, match="precision"):
            JobRequest.from_dict(
                {"kind": "lifetime", "design": "C1", "precision": "float16"}
            )

    def test_obs_counters_unaffected_by_tier(self, small_analyzer):
        """Tier switching must not change which metrics fire."""
        with obs.enabled():
            small_analyzer.reliability(1e5, method="st_fast")
            reference = set(obs.metrics_snapshot()["counters"])
        with use_precision("fast32"), obs.enabled():
            small_analyzer.reliability(1e5, method="st_fast")
            fast = set(obs.metrics_snapshot()["counters"])
        assert fast == reference
