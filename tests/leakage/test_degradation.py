"""Unit tests for the SBD-to-HBD leakage degradation simulator (Fig. 3)."""

import numpy as np
import pytest

from repro.core.obd_model import OBDModel
from repro.errors import ConfigurationError
from repro.leakage.degradation import (
    DegradationParams,
    GateLeakageSimulator,
)
from repro.stats.weibull import AreaScaledWeibull


@pytest.fixture()
def stress_law():
    # A stressed device: 3.1 V at 100 degC accelerates breakdown to hours.
    model = OBDModel()
    params = model.device_params(100.0, vdd=3.1)
    return AreaScaledWeibull(alpha=params.alpha, beta=params.b * 2.2, area=1.0)


@pytest.fixture()
def simulator(stress_law):
    return GateLeakageSimulator(stress_law)


class TestDegradationParams:
    def test_defaults_valid(self):
        params = DegradationParams()
        assert params.sbd_jump_ratio > 1.0

    def test_rejects_non_increasing_sbd(self):
        with pytest.raises(ConfigurationError):
            DegradationParams(sbd_jump_ratio=0.9)

    def test_rejects_hbd_below_sbd(self):
        with pytest.raises(ConfigurationError):
            DegradationParams(sbd_jump_ratio=20.0, hbd_current_ratio=10.0)


class TestGateLeakageSimulator:
    def test_stress_accelerates_breakdown(self, stress_law):
        nominal = OBDModel().device_params(100.0, vdd=1.2)
        assert stress_law.alpha < nominal.alpha / 1e6

    def test_flat_before_sbd(self, simulator, rng):
        trace = simulator.simulate_until_hbd(rng)
        before = trace.times < trace.sbd_time
        assert before.sum() > 0
        np.testing.assert_allclose(
            trace.current[before], simulator.params.baseline_current
        )

    def test_jump_at_sbd(self, simulator, rng):
        trace = simulator.simulate_until_hbd(rng)
        after = trace.times >= trace.sbd_time
        first_after = trace.current[after][0]
        ratio = first_after / simulator.params.baseline_current
        # The paper quotes a 10-20x jump.
        assert ratio > 0.5 * simulator.params.sbd_jump_ratio

    def test_monotone_growth_after_sbd(self, simulator, rng):
        trace = simulator.simulate_until_hbd(rng)
        after = trace.current[trace.times >= trace.sbd_time]
        assert np.all(np.diff(after) >= -1e-18)

    def test_hbd_reached_and_after_sbd(self, simulator, rng):
        trace = simulator.simulate_until_hbd(rng)
        assert trace.reached_hbd
        assert trace.hbd_time > trace.sbd_time
        hbd_level = (
            simulator.params.hbd_current_ratio
            * simulator.params.baseline_current
        )
        assert trace.current[-1] >= hbd_level or trace.reached_hbd

    def test_leakage_ratio_normalised(self, simulator, rng):
        trace = simulator.simulate_until_hbd(rng)
        ratio = trace.leakage_ratio()
        assert ratio[0] == pytest.approx(1.0)
        assert ratio.max() >= simulator.params.hbd_current_ratio * 0.5

    def test_no_breakdown_within_short_window(self, simulator, rng):
        # A window of 1e-6 characteristic lives has a ~1e-(6*beta) SBD
        # probability: the trace stays flat at baseline.
        horizon = 1e-6 * simulator.sbd_law.characteristic_life()
        times = np.linspace(horizon / 50.0, horizon, 50)
        trace = simulator.simulate(times, rng)
        assert not trace.reached_hbd
        np.testing.assert_allclose(
            trace.current, simulator.params.baseline_current
        )

    def test_sbd_times_follow_weibull(self, stress_law, rng):
        simulator = GateLeakageSimulator(stress_law)
        horizon = 50.0 * stress_law.characteristic_life()
        times = np.linspace(1e-6, horizon, 64)
        draws = []
        for _ in range(400):
            trace = simulator.simulate(times, rng, max_breakdowns=1)
            if np.isfinite(trace.sbd_time):
                draws.append(trace.sbd_time)
        draws = np.array(draws)
        assert len(draws) > 350
        # Median of the Weibull law vs empirical median.
        assert np.median(draws) == pytest.approx(
            stress_law.ppf(0.5), rel=0.2
        )

    def test_path_current_grows_as_power_law(self, simulator):
        p = simulator.params
        tau = simulator.growth_time_constant
        i1 = simulator.path_current(np.array(tau))
        i0 = simulator.path_current(np.array(0.0))
        assert i1 / i0 == pytest.approx(2.0**p.growth_exponent)

    def test_growth_time_scales_with_stress(self, stress_law):
        relaxed = AreaScaledWeibull(
            alpha=stress_law.alpha * 100.0, beta=stress_law.beta
        )
        fast = GateLeakageSimulator(stress_law)
        slow = GateLeakageSimulator(relaxed)
        assert slow.growth_time_constant == pytest.approx(
            100.0 * fast.growth_time_constant
        )

    def test_simulate_validates_grid(self, simulator, rng):
        with pytest.raises(ConfigurationError):
            simulator.simulate(np.array([3.0, 2.0, 1.0]), rng)
        with pytest.raises(ConfigurationError):
            simulator.simulate(np.array([5.0]), rng)
