"""Unit tests for chip-level SBD leakage population modeling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.leakage.degradation import DegradationParams
from repro.leakage.population import ChipLeakagePopulation
from repro.stats.weibull import AreaScaledWeibull


@pytest.fixture(scope="module")
def population():
    # A stressed operating point so events appear within the test window.
    law = AreaScaledWeibull(alpha=1.0e6, beta=3.0, area=1.0)
    return ChipLeakagePopulation(
        sbd_law=law, total_area=1.0e5, params=DegradationParams()
    )


class TestExpectedEvents:
    def test_weibull_hazard_form(self, population):
        t = 1e4
        expected = 1e5 * (t / 1e6) ** 3.0
        assert population.expected_events(t) == pytest.approx(expected)

    def test_monotone(self, population):
        times = np.logspace(3, 5, 10)
        events = np.asarray(population.expected_events(times))
        assert np.all(np.diff(events) > 0.0)

    def test_matches_poisson_sampler(self, population, rng):
        horizon = 3e4
        traces = population.sample_total_current(
            np.array([horizon]), n_chips=400, rng=rng
        )
        # Count chips with at least one event (trace above baseline).
        frac_hit = float((traces[:, 0] > population.baseline_current()).mean())
        mean_events = float(population.expected_events(horizon))
        expected_frac = 1.0 - np.exp(-mean_events)
        assert frac_hit == pytest.approx(expected_frac, abs=0.08)


class TestExpectedExtraCurrent:
    def test_zero_at_time_zero(self, population):
        assert population.expected_extra_current(0.0) == 0.0

    def test_monotone_growth(self, population):
        values = [
            population.expected_extra_current(t) for t in (1e3, 1e4, 5e4)
        ]
        assert values[0] < values[1] < values[2]

    def test_matches_monte_carlo(self, population, rng):
        times = np.array([2e4, 4e4])
        traces = population.sample_total_current(times, n_chips=1500, rng=rng)
        extra = traces - population.baseline_current()
        for k, t in enumerate(times):
            analytic = population.expected_extra_current(float(t))
            mc = float(extra[:, k].mean())
            se = float(extra[:, k].std(ddof=1) / np.sqrt(len(extra)))
            assert abs(mc - analytic) < max(5.0 * se, 0.05 * analytic)

    def test_rejects_negative_time(self, population):
        with pytest.raises(ConfigurationError):
            population.expected_extra_current(-1.0)


class TestSampler:
    def test_traces_monotone(self, population, rng):
        times = np.linspace(1e3, 5e4, 20)
        traces = population.sample_total_current(times, n_chips=30, rng=rng)
        assert np.all(np.diff(traces, axis=1) >= -1e-18)

    def test_baseline_floor(self, population, rng):
        times = np.linspace(1e3, 5e4, 5)
        traces = population.sample_total_current(times, n_chips=30, rng=rng)
        assert np.all(traces >= population.baseline_current() - 1e-18)

    def test_validation(self, population, rng):
        with pytest.raises(ConfigurationError):
            population.sample_total_current(np.array([2.0, 1.0]), 5, rng)
        with pytest.raises(ConfigurationError):
            population.sample_total_current(np.array([1.0]), 0, rng)


class TestTimeToBudget:
    def test_budget_round_trip(self, population):
        t = population.time_to_budget(budget_ratio=1.5)
        extra = population.expected_extra_current(t)
        assert extra == pytest.approx(
            0.5 * population.baseline_current(), rel=1e-6
        )

    def test_larger_budget_later(self, population):
        assert population.time_to_budget(2.0) > population.time_to_budget(1.2)

    def test_rejects_sub_unity_budget(self, population):
        with pytest.raises(ConfigurationError):
            population.time_to_budget(0.9)

    def test_leakage_criterion_vs_first_breakdown(self, population):
        """A 10%-leakage-budget end of life lands *after* the time of the
        first expected breakdown but within a few characteristic decades —
        the regime the paper's SBD criterion conservatively bounds."""
        t_budget = population.time_to_budget(1.1)
        # Time at which one SBD is expected on the chip:
        t_first = population.sbd_law.alpha * (
            1.0 / population.total_area
        ) ** (1.0 / population.sbd_law.beta)
        assert t_budget > t_first


class TestValidation:
    def test_rejects_bad_area(self):
        law = AreaScaledWeibull(alpha=1e6, beta=2.0)
        with pytest.raises(ConfigurationError):
            ChipLeakagePopulation(sbd_law=law, total_area=0.0)
