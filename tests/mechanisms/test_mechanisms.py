"""Tests for the failure-mechanism plugin registry and builtins."""

import numpy as np
import pytest

from repro.core.obd_model import DeviceReliabilityParams, OBDModel
from repro.errors import ConfigurationError
from repro.mechanisms import (
    EM,
    NBTI,
    FailureMechanism,
    MechanismContext,
    OxideBreakdown,
    StressCondition,
    get_mechanism,
    mechanism_names,
    register_mechanism,
)


def _context() -> MechanismContext:
    return MechanismContext(obd_model=OBDModel(), nominal_thickness_nm=2.2)


def _stress(temps=(80.0, 100.0), vdd=None) -> StressCondition:
    return StressCondition(
        temperatures_c=np.asarray(temps, dtype=float), vdd=vdd
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert {"em", "nbti", "obd"} <= set(mechanism_names())

    def test_names_sorted(self):
        assert list(mechanism_names()) == sorted(mechanism_names())

    def test_get_mechanism_instantiates(self):
        assert isinstance(get_mechanism("obd"), OxideBreakdown)
        assert isinstance(get_mechanism("nbti"), NBTI)
        assert isinstance(get_mechanism("em"), EM)

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown mechanism"):
            get_mechanism("rust")

    def test_register_requires_subclass(self):
        with pytest.raises(ConfigurationError, match="must subclass"):
            register_mechanism(dict)

    def test_register_requires_name(self):
        class Nameless(FailureMechanism):
            def block_params(self, context, stress):
                return []

        with pytest.raises(ConfigurationError, match="non-empty 'name'"):
            register_mechanism(Nameless)

    def test_register_rejects_duplicate_name(self):
        class Impostor(FailureMechanism):
            name = "obd"

            def block_params(self, context, stress):
                return []

        with pytest.raises(ConfigurationError, match="already registered"):
            register_mechanism(Impostor)

    def test_register_idempotent_for_same_class(self):
        assert register_mechanism(OxideBreakdown) is OxideBreakdown


class TestStressCondition:
    def test_normalises_temperatures(self):
        stress = StressCondition(temperatures_c=[70, 90])
        assert stress.temperatures_c.dtype == np.float64
        assert stress.temperatures_c.shape == (2,)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="1-D"):
            StressCondition(temperatures_c=np.array([]))

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError, match="1-D"):
            StressCondition(temperatures_c=np.zeros((2, 2)))

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(ConfigurationError, match="vdd"):
            StressCondition(temperatures_c=[80.0], vdd=0.0)


class TestMechanismContext:
    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ConfigurationError, match="thickness"):
            MechanismContext(obd_model=OBDModel(), nominal_thickness_nm=0.0)


class TestOxideBreakdown:
    def test_delegates_to_obd_model_exactly(self):
        context = _context()
        stress = _stress(vdd=1.25)
        ours = OxideBreakdown().block_params(context, stress)
        reference = context.obd_model.block_params(
            stress.temperatures_c, stress.vdd
        )
        assert ours == reference


class TestArrheniusMechanisms:
    @pytest.mark.parametrize("mechanism", [NBTI(), EM()])
    def test_alpha_at_reference_is_alpha_ref(self, mechanism):
        assert mechanism.alpha(mechanism.t_ref_c) == pytest.approx(
            mechanism.alpha_ref_hours
        )

    @pytest.mark.parametrize("mechanism", [NBTI(), EM()])
    def test_hotter_is_shorter(self, mechanism):
        assert mechanism.alpha(125.0) < mechanism.alpha(80.0)

    @pytest.mark.parametrize("mechanism", [NBTI(), EM()])
    def test_overvoltage_is_shorter(self, mechanism):
        ref = mechanism.v_ref_v
        assert mechanism.alpha(100.0, vdd=ref * 1.1) < mechanism.alpha(
            100.0, vdd=ref
        )

    @pytest.mark.parametrize("mechanism", [NBTI(), EM()])
    def test_block_params_shape_and_slope(self, mechanism):
        context = _context()
        params = mechanism.block_params(context, _stress((70.0, 90.0, 110.0)))
        assert len(params) == 3
        for prm in params:
            assert isinstance(prm, DeviceReliabilityParams)
            # beta = b * x lands on the intended Weibull shape at the
            # nominal thickness.
            assert prm.b * context.nominal_thickness_nm == pytest.approx(
                mechanism.weibull_shape
            )
        assert params[0].alpha > params[1].alpha > params[2].alpha

    def test_em_steeper_than_nbti_in_temperature(self):
        # E_A(EM) = 0.8 eV > E_A(NBTI) = 0.58 eV: EM accelerates faster.
        nbti, em = NBTI(), EM()
        nbti_ratio = nbti.alpha(80.0) / nbti.alpha(120.0)
        em_ratio = em.alpha(80.0) / em.alpha(120.0)
        assert em_ratio > nbti_ratio

    def test_aging_rates_are_reciprocal_alphas(self):
        context = _context()
        stress = _stress()
        mechanism = NBTI()
        rates = mechanism.aging_rates(context, stress)
        alphas = [p.alpha for p in mechanism.block_params(context, stress)]
        assert np.allclose(rates, [1.0 / a for a in alphas], rtol=0.0)
