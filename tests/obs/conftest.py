"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability disabled and empty."""
    obs.disable()
    obs.reset()
    obs.clear_span_end()
    obs.set_clock(None)
    yield
    obs.disable()
    obs.reset()
    obs.clear_span_end()
    obs.set_clock(None)
