"""Tests for the flight recorder ring buffer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import flight
from repro.obs.flight import FlightRecorder


class SteppingClock:
    """Deterministic wall clock: advances by ``step`` per read."""

    def __init__(self, start: float = 1000.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_recorder(**kwargs) -> FlightRecorder:
    kwargs.setdefault("clock", SteppingClock())
    return FlightRecorder(**kwargs)


class TestLifecycle:
    def test_healthy_fast_job_leaves_no_residue(self):
        rec = make_recorder(slow_s=30.0)
        rec.open("j1", kind="mc")
        rec.event("j1", "start", queue_wait_s=0.0)
        assert rec.active_count() == 1
        dumped = rec.close("j1", "done", duration_s=0.5)
        assert not dumped
        assert rec.records() == []
        assert rec.active_count() == 0

    @pytest.mark.parametrize("state", ["failed", "cancelled"])
    def test_bad_terminal_states_dump(self, state):
        rec = make_recorder()
        rec.open("j1", kind="mc")
        assert rec.close("j1", state, duration_s=0.1)
        (dump,) = rec.records()
        assert dump["state"] == state
        assert dump["reason"] == state
        events = [e["event"] for e in dump["events"]]
        assert events == ["submit", "finish"]
        assert dump["events"][-1]["state"] == state

    def test_slow_job_dumps_with_slow_reason(self):
        rec = make_recorder(slow_s=2.0)
        rec.open("j1")
        assert rec.close("j1", "done", duration_s=5.0)
        (dump,) = rec.records()
        assert dump["reason"] == "slow"
        assert dump["state"] == "done"

    def test_slow_criterion_disabled_with_none(self):
        rec = make_recorder(slow_s=None)
        rec.open("j1")
        assert not rec.close("j1", "done", duration_s=1e9)

    def test_trace_attached_to_dump(self):
        rec = make_recorder()
        rec.open("j1")
        tree = {"name": "service.job", "wall_time_s": 0.2}
        rec.close("j1", "failed", duration_s=0.2, trace=tree)
        (dump,) = rec.records()
        assert dump["trace"] == tree

    def test_event_timestamps_use_injected_clock(self):
        clock = SteppingClock(start=50.0, step=1.0)
        rec = FlightRecorder(clock=clock)
        rec.open("j1")
        rec.event("j1", "queued", depth=2)
        rec.close("j1", "failed", duration_s=0.0)
        (dump,) = rec.records()
        assert dump["opened_at"] == 50.0
        stamps = [e["t"] for e in dump["events"]]
        assert stamps == sorted(stamps)
        assert dump["events"][1] == {"t": 52.0, "event": "queued", "depth": 2}

    def test_unknown_job_event_and_close_are_noops(self):
        rec = make_recorder()
        rec.event("ghost", "start")
        assert not rec.close("ghost", "failed")
        assert rec.records() == []

    def test_discard_drops_without_dump(self):
        rec = make_recorder()
        rec.open("j1")
        rec.discard("j1")
        assert rec.active_count() == 0
        assert not rec.close("j1", "failed")


class TestBounds:
    def test_dump_ring_evicts_oldest(self):
        rec = make_recorder(capacity=2)
        for i in range(4):
            rec.open(f"j{i}")
            rec.close(f"j{i}", "failed")
        records = rec.records()
        assert [r["job_id"] for r in records] == ["j3", "j2"]

    def test_per_job_event_cap(self):
        rec = make_recorder(max_events=4)
        rec.open("j1")
        for i in range(20):
            rec.event("j1", "shard.progress", done=i)
        rec.close("j1", "failed")
        (dump,) = rec.records()
        assert len(dump["events"]) == 4
        # Oldest events evicted; the final finish event is retained.
        assert dump["events"][-1]["event"] == "finish"

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(max_events=0)

    def test_records_are_json_ready(self):
        rec = make_recorder()
        rec.open("j1", kind="mc", client="c1")
        rec.close("j1", "failed", duration_s=0.25)
        assert json.loads(json.dumps(rec.records())) == rec.records()


class TestThreadLocalBinding:
    def test_emit_unbound_is_noop(self):
        flight.emit("shard.progress", done=1)  # must not raise

    def test_bind_routes_emit(self):
        rec = make_recorder()
        rec.open("j1")
        with flight.bind(rec, "j1"):
            flight.emit("checkpoint.flush", shards=3)
        flight.emit("after.unbind")  # no longer routed
        rec.close("j1", "failed")
        (dump,) = rec.records()
        events = [e["event"] for e in dump["events"]]
        assert "checkpoint.flush" in events
        assert "after.unbind" not in events

    def test_bind_nesting_restores_previous_target(self):
        rec = make_recorder()
        rec.open("outer")
        rec.open("inner")
        with flight.bind(rec, "outer"):
            with flight.bind(rec, "inner"):
                flight.emit("inner.event")
            flight.emit("outer.event")
        rec.close("outer", "failed")
        rec.close("inner", "failed")
        by_id = {d["job_id"]: d for d in rec.records()}
        assert any(
            e["event"] == "inner.event" for e in by_id["inner"]["events"]
        )
        assert any(
            e["event"] == "outer.event" for e in by_id["outer"]["events"]
        )
        assert all(
            e["event"] != "outer.event" for e in by_id["inner"]["events"]
        )

    def test_bound_emits_are_thread_local(self):
        rec = make_recorder()
        rec.open("j1")
        seen = []

        def other_thread():
            flight.emit("from.other")  # unbound on this thread
            seen.append(True)

        with flight.bind(rec, "j1"):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join(timeout=5)
        rec.close("j1", "failed")
        (dump,) = rec.records()
        assert seen == [True]
        assert all(e["event"] != "from.other" for e in dump["events"])
