"""Tests for the structured logger."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import configure_logging, get_logger


@pytest.fixture(autouse=True)
def restore_repro_logger():
    """Leave the ``repro`` logger tree as the test found it."""
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers[:] = saved[0]
    logger.setLevel(saved[1])
    logger.propagate = saved[2]


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger("core.montecarlo").name == "repro.core.montecarlo"
        assert get_logger("repro.core.montecarlo").name == "repro.core.montecarlo"
        assert get_logger().name == "repro"


class TestConfigureLogging:
    def test_human_readable_format(self):
        stream = io.StringIO()
        configure_logging(level="INFO", stream=stream)
        get_logger("thermal").info("solved %d cells", 625)
        assert "INFO repro.thermal: solved 625 cells" in stream.getvalue()

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level="WARNING", stream=stream)
        get_logger("x").info("hidden")
        get_logger("x").warning("shown")
        out = stream.getvalue()
        assert "hidden" not in out
        assert "shown" in out

    def test_json_output_with_extra_fields(self):
        stream = io.StringIO()
        configure_logging(level="DEBUG", json_output=True, stream=stream)
        get_logger("core.montecarlo").warning(
            "dropping %d chips", 3, extra={"metric": "mc.nonfinite_chunks"}
        )
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.core.montecarlo"
        assert payload["message"] == "dropping 3 chips"
        assert payload["metric"] == "mc.nonfinite_chunks"
        assert "ts" in payload

    def test_json_serialises_unserialisable_extra(self):
        stream = io.StringIO()
        configure_logging(level="DEBUG", json_output=True, stream=stream)
        get_logger("x").info("msg", extra={"obj": object()})
        payload = json.loads(stream.getvalue())
        assert payload["obj"].startswith("<object object")

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging(level="INFO", stream=first)
        configure_logging(level="INFO", stream=second)
        get_logger("x").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="LOUD")
