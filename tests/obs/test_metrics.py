"""Tests for the counter/gauge/histogram registry."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, log_buckets


class TestCounters:
    def test_disabled_is_noop(self):
        obs.inc("mc.chips", 100)
        obs.gauge("pca.factors", 37)
        obs.observe("mc.shard_seconds", 0.5)
        snap = obs.metrics_snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counter_aggregation(self):
        obs.enable()
        obs.inc("mc.chips", 100)
        obs.inc("mc.chips", 50)
        obs.inc("mc.nonfinite_chunks")
        assert obs.get_counter("mc.chips") == 150.0
        assert obs.get_counter("mc.nonfinite_chunks") == 1.0
        assert obs.get_counter("never.seen") == 0.0

    def test_gauge_keeps_latest(self):
        obs.enable()
        obs.gauge("pca.factors", 37)
        obs.gauge("pca.factors", 12)
        assert obs.get_gauge("pca.factors") == 12.0
        assert obs.get_gauge("never.seen") is None

    def test_snapshot_json_round_trip(self):
        obs.enable()
        obs.inc("blod.blocks", 8)
        obs.gauge("pca.spatial_factors", 36)
        snap = obs.metrics_snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_reset_clears_registry(self):
        obs.enable()
        obs.inc("a", 1)
        obs.gauge("b", 2)
        obs.observe("c", 3.0)
        obs.reset()
        assert obs.metrics_snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_thread_safe_aggregation(self):
        obs.enable()
        n_threads, n_incs = 8, 500

        def worker():
            for _ in range(n_incs):
                obs.inc("contended")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert obs.get_counter("contended") == float(n_threads * n_incs)


class TestLogBuckets:
    def test_spacing_and_endpoints(self):
        bounds = log_buckets(1e-3, 1.0, per_decade=1)
        assert bounds == (1e-3, 1e-2, 1e-1, 1.0)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.5)

    def test_default_buckets_ascend(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
        assert DEFAULT_BUCKETS[0] == 1e-4
        assert DEFAULT_BUCKETS[-1] == 1e3


class TestHistograms:
    def test_observe_counts_and_sum(self):
        obs.enable()
        for value in (0.5, 1.5, 1.5, 80.0):
            obs.observe("lat", value, buckets=(1.0, 10.0))
        hist = obs.get_histogram("lat")
        assert hist is not None
        assert hist.count == 4
        assert hist.sum == pytest.approx(83.5)
        # buckets: <=1.0, <=10.0, +Inf overflow
        assert hist.counts == [1, 2, 1]
        assert hist.cumulative() == [(1.0, 1), (10.0, 3), (math.inf, 4)]

    def test_boundary_value_lands_in_its_bucket(self):
        obs.enable()
        obs.observe("edge", 1.0, buckets=(1.0, 10.0))
        hist = obs.get_histogram("edge")
        assert hist is not None
        assert hist.counts == [1, 0, 0]  # le="1.0" is inclusive

    def test_quantile_interpolates(self):
        hist = Histogram("q", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist._observe(value)
        # p50 target = 2 samples -> falls at the top of the (1, 2] bucket.
        assert hist.quantile(0.5) == pytest.approx(1.5, abs=0.51)
        assert hist.quantile(1.0) == pytest.approx(4.0)
        assert hist.quantile(0.0) == pytest.approx(0.0, abs=1.0)

    def test_quantile_clamps_to_last_bound(self):
        hist = Histogram("over", bounds=(1.0,))
        hist._observe(100.0)
        assert hist.quantile(0.99) == 1.0

    def test_quantile_empty_is_nan(self):
        hist = Histogram("empty")
        assert math.isnan(hist.quantile(0.5))

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("bad").quantile(1.5)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, math.inf))

    def test_snapshot_shape_and_json(self):
        obs.enable()
        obs.observe("snap", 0.02)
        snap = obs.metrics_snapshot()["histograms"]["snap"]
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(0.02)
        assert len(snap["counts"]) == len(snap["buckets"]) + 1
        assert sum(snap["counts"]) == 1
        assert json.loads(json.dumps(snap)) == snap

    def test_custom_buckets_apply_on_first_observe_only(self):
        obs.enable()
        obs.observe("first", 5.0, buckets=(1.0, 10.0))
        obs.observe("first", 5.0, buckets=(2.0, 20.0))  # ignored
        hist = obs.get_histogram("first")
        assert hist is not None
        assert hist.bounds == (1.0, 10.0)
        assert hist.count == 2

    def test_thread_safe_observation(self):
        obs.enable()
        n_threads, n_obs = 8, 300

        def worker():
            for i in range(n_obs):
                obs.observe("contended.hist", float(i % 7))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        hist = obs.get_histogram("contended.hist")
        assert hist is not None
        assert hist.count == n_threads * n_obs
        assert sum(hist.counts) == n_threads * n_obs
