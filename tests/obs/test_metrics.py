"""Tests for the counter/gauge registry."""

from __future__ import annotations

import json
import threading

from repro import obs


class TestCounters:
    def test_disabled_is_noop(self):
        obs.inc("mc.chips", 100)
        obs.gauge("pca.factors", 37)
        snap = obs.metrics_snapshot()
        assert snap == {"counters": {}, "gauges": {}}

    def test_counter_aggregation(self):
        obs.enable()
        obs.inc("mc.chips", 100)
        obs.inc("mc.chips", 50)
        obs.inc("mc.nonfinite_chunks")
        assert obs.get_counter("mc.chips") == 150.0
        assert obs.get_counter("mc.nonfinite_chunks") == 1.0
        assert obs.get_counter("never.seen") == 0.0

    def test_gauge_keeps_latest(self):
        obs.enable()
        obs.gauge("pca.factors", 37)
        obs.gauge("pca.factors", 12)
        assert obs.get_gauge("pca.factors") == 12.0
        assert obs.get_gauge("never.seen") is None

    def test_snapshot_json_round_trip(self):
        obs.enable()
        obs.inc("blod.blocks", 8)
        obs.gauge("pca.spatial_factors", 36)
        snap = obs.metrics_snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_reset_clears_registry(self):
        obs.enable()
        obs.inc("a", 1)
        obs.gauge("b", 2)
        obs.reset()
        assert obs.metrics_snapshot() == {"counters": {}, "gauges": {}}

    def test_thread_safe_aggregation(self):
        obs.enable()
        n_threads, n_incs = 8, 500

        def worker():
            for _ in range(n_incs):
                obs.inc("contended")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert obs.get_counter("contended") == float(n_threads * n_incs)
