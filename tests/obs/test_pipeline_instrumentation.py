"""End-to-end checks: the analysis pipeline reports into repro.obs.

Mirrors the acceptance criteria of the instrumentation work: with tracing
on, one full analysis records the ``thermal``/``pca``/``blod`` stages, the
chosen evaluation method, and the PCA-factor/block-count counters; with
tracing off (the default), results are bit-for-bit identical to an
uninstrumented run.
"""

from __future__ import annotations

import json

from repro import ReliabilityAnalyzer, obs


class TestStageSpans:
    def test_full_flow_records_expected_stages(self, small_floorplan, fast_config):
        with obs.enabled():
            analyzer = ReliabilityAnalyzer(small_floorplan, config=fast_config)
            analyzer.reliability(1e5, method="st_fast")
            stages = obs.stage_times()
            counters = obs.metrics_snapshot()["counters"]
        for stage in ("thermal", "pca", "blod", "st_fast"):
            assert stage in stages, f"missing stage {stage}"
            assert stages[stage]["wall_time_s"] >= 0.0
        assert counters["pca.factors"] == analyzer.canonical.n_factors
        assert counters["blod.blocks"] == small_floorplan.n_blocks
        assert counters["integration.subdomain_evals"] > 0

    def test_method_span_per_method(self, small_analyzer):
        for method in ("st_fast", "hybrid", "guard"):
            with obs.enabled():
                small_analyzer.reliability(1e5, method=method)
                assert method in obs.stage_times()

    def test_hybrid_lut_counters(self, small_analyzer):
        with obs.enabled():
            small_analyzer.reliability(
                [1e4, 1e5, 1e6], method="hybrid"
            )
            counters = obs.metrics_snapshot()["counters"]
        hits = counters.get("hybrid.lut_hits", 0)
        misses = counters.get("hybrid.lut_misses", 0)
        # 3 times x 4 blocks = 12 look-ups, each either a hit or a miss.
        assert hits + misses == 12

    def test_mc_chip_counter(self, small_analyzer, rng):
        with obs.enabled():
            small_analyzer.mc_engine.reliability_curve(
                [1e5], n_chips=60, rng=rng
            )
            assert obs.get_counter("mc.chips") == 60

    def test_snapshot_is_json_serialisable(self, small_floorplan, fast_config):
        with obs.enabled():
            ReliabilityAnalyzer(small_floorplan, config=fast_config)
            snapshot = obs.observability_snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestDisabledModeIsTransparent:
    def test_lifetime_bit_for_bit(self, small_floorplan, fast_config):
        baseline = ReliabilityAnalyzer(
            small_floorplan, config=fast_config
        ).lifetime(10, method="st_fast")
        with obs.enabled():
            traced = ReliabilityAnalyzer(
                small_floorplan, config=fast_config
            ).lifetime(10, method="st_fast")
        assert traced == baseline  # exact float equality, not approx

    def test_disabled_run_leaves_no_trace(self, small_floorplan, fast_config):
        analyzer = ReliabilityAnalyzer(small_floorplan, config=fast_config)
        analyzer.reliability(1e5, method="st_fast")
        assert obs.trace_snapshot() == []
        assert obs.metrics_snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
