"""Tests for the profiling hooks: span-end callbacks, budgets, summaries."""

from __future__ import annotations

import time

import pytest

from repro import obs


class TestOnSpanEnd:
    def test_callback_fires_per_finished_span(self):
        obs.enable()
        seen: list[str] = []
        obs.on_span_end(lambda node: seen.append(node.name))
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        # Inner finishes first.
        assert seen == ["inner", "outer"]

    def test_remove_span_end(self):
        obs.enable()
        seen: list[str] = []
        callback = obs.on_span_end(lambda node: seen.append(node.name))
        obs.remove_span_end(callback)
        with obs.span("stage"):
            pass
        assert seen == []

    def test_callback_receives_wall_time(self):
        obs.enable()
        walls: list[float] = []
        obs.on_span_end(lambda node: walls.append(node.wall_time))
        with obs.span("stage"):
            time.sleep(0.01)
        assert walls and walls[0] >= 0.01


class TestSpanBudgets:
    def test_violation_collected(self):
        obs.enable()
        with obs.SpanBudgets({"slow": 0.0, "fast": 60.0}) as budgets:
            with obs.span("slow"):
                time.sleep(0.005)
            with obs.span("fast"):
                pass
            with obs.span("unbudgeted"):
                pass
        assert [v[0] for v in budgets.violations] == ["slow"]
        with pytest.raises(AssertionError, match="slow"):
            budgets.check()

    def test_no_violation_passes(self):
        obs.enable()
        with obs.SpanBudgets({"fast": 60.0}) as budgets:
            with obs.span("fast"):
                pass
        budgets.check()
        assert budgets.violations == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            obs.SpanBudgets({"x": -1.0})


class TestSummaries:
    def test_stage_times_flattens_and_merges(self):
        obs.enable()
        for _ in range(3):
            with obs.span("repeat"):
                with obs.span("leaf"):
                    pass
        stages = obs.stage_times()
        assert stages["repeat"]["count"] == 3
        assert stages["leaf"]["count"] == 3
        assert stages["repeat"]["wall_time_s"] >= stages["leaf"]["wall_time_s"]

    def test_timing_summary_renders_tree(self):
        obs.enable()
        with obs.span("root"):
            with obs.span("child"):
                pass
            with obs.span("child"):
                pass
        text = obs.timing_summary()
        assert text.startswith("timing:")
        assert "root" in text
        assert "child" in text
        assert "x2" in text

    def test_timing_summary_empty(self):
        assert "no spans" in obs.timing_summary()

    def test_observability_snapshot_shape(self):
        obs.enable()
        with obs.span("stage"):
            obs.inc("stage.counter", 2)
        snap = obs.observability_snapshot()
        assert set(snap) == {"trace", "metrics", "stages"}
        assert snap["metrics"]["counters"]["stage.counter"] == 2.0
        assert snap["stages"]["stage"]["count"] == 1

class TestRenderTrace:
    def _tree(self):
        return [
            {
                "name": "service.job",
                "wall_time_s": 0.012,
                "attrs": {"kind": "mc", "trace_id": "t1"},
                "children": [
                    {
                        "name": "exec.shard",
                        "wall_time_s": 0.004,
                        "attrs": {"shard": 0},
                    },
                    {
                        "name": "exec.shard",
                        "wall_time_s": 0.005,
                        "attrs": {"shard": 1},
                        "error": "ValueError: boom",
                        "children": [
                            {"name": "mc.chunk", "wall_time_s": 0.001}
                        ],
                    },
                ],
            }
        ]

    def test_empty(self):
        assert obs.render_trace([]) == "(no spans recorded)"

    def test_renders_every_node_with_timing(self):
        text = obs.render_trace(self._tree())
        lines = text.splitlines()
        assert lines[0] == "service.job  12.00 ms  [kind=mc, trace_id=t1]"
        assert "|-- exec.shard  4.00 ms  [shard=0]" in text
        assert "mc.chunk  1.00 ms" in text
        # Siblings are NOT merged: both shard spans appear.
        assert text.count("exec.shard") == 2

    def test_error_marker(self):
        text = obs.render_trace(self._tree())
        assert "!! ValueError: boom" in text

    def test_no_attrs_flag(self):
        text = obs.render_trace(self._tree(), show_attrs=False)
        assert "[shard=0]" not in text
        assert "kind=mc" not in text

    def test_max_depth_prunes(self):
        text = obs.render_trace(self._tree(), max_depth=1)
        assert "mc.chunk" not in text
        assert "1 child span(s) pruned" in text
