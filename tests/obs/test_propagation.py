"""Tests for cross-process trace propagation primitives."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.propagate import (
    TraceContext,
    current_trace_context,
    current_trace_id,
    record_subtree,
    set_trace_id,
)


class TestTraceContext:
    def test_frozen_and_picklable(self):
        ctx = TraceContext(trace_id="abc", parent_span_id="def")
        assert pickle.loads(pickle.dumps(ctx)) == ctx
        with pytest.raises(AttributeError):
            ctx.trace_id = "other"  # type: ignore[misc]

    def test_context_none_while_disabled(self):
        assert current_trace_context() is None

    def test_context_captures_open_span(self):
        obs.enable()
        set_trace_id("job-42")
        try:
            with obs.span("service.job") as node:
                ctx = current_trace_context()
            assert ctx == TraceContext(
                trace_id="job-42", parent_span_id=node.span_id
            )
        finally:
            set_trace_id(None)

    def test_context_without_open_span_has_empty_parent(self):
        obs.enable()
        ctx = current_trace_context()
        assert ctx == TraceContext(trace_id="", parent_span_id="")


class TestTraceIdBinding:
    def test_bind_and_clear(self):
        assert current_trace_id() is None
        set_trace_id("t1")
        assert current_trace_id() == "t1"
        set_trace_id(None)
        assert current_trace_id() is None


class TestRecordSubtree:
    def test_detached_from_root_registry(self):
        obs.enable()
        with record_subtree("exec.shard", shard=3) as node:
            with obs.span("inner"):
                pass
        # Inner spans nested under the subtree, not the shared registry.
        assert obs.trace_snapshot() == []
        assert [c.name for c in node.children] == ["inner"]
        assert node.attrs["shard"] == 3
        assert node.end is not None

    def test_context_attrs_stamped_on_root(self):
        obs.enable()
        ctx = TraceContext(trace_id="tid", parent_span_id="pid")
        with record_subtree("exec.shard", ctx) as node:
            pass
        assert node.attrs["trace_id"] == "tid"
        assert node.attrs["parent_span_id"] == "pid"

    def test_force_enables_and_restores_disabled_state(self):
        # The situation inside a process-pool worker: the global switch
        # is off, but the worker must still capture its subtree.
        assert not trace.is_enabled()
        with record_subtree("exec.shard") as node:
            assert trace.is_enabled()
            with obs.span("inner"):
                pass
        assert not trace.is_enabled()
        assert [c.name for c in node.children] == ["inner"]

    def test_error_recorded_before_reraise(self):
        obs.enable()
        with pytest.raises(ValueError, match="boom"):
            with record_subtree("exec.shard") as node:
                raise ValueError("boom")
        assert node.error == "ValueError: boom"
        assert node.end is not None
        doc = node.to_dict()
        assert doc["error"] == "ValueError: boom"

    def test_finishing_scope_keeps_concurrent_recorder_enabled(self):
        # Regression: force-enable is refcounted.  The old save-and-restore
        # pattern let the first scope to *exit* switch tracing off globally,
        # silently dropping inner spans of any scope still recording.
        b_entered = threading.Event()
        a_entered = threading.Event()
        b_exited = threading.Event()
        results: dict[str, list[str]] = {}

        def scope_b():
            with record_subtree("exec.shard.b"):
                b_entered.set()
                assert a_entered.wait(5.0)
            b_exited.set()

        def scope_a():
            assert b_entered.wait(5.0)
            with record_subtree("exec.shard.a") as node:
                a_entered.set()
                assert b_exited.wait(5.0)
                with obs.span("a.inner"):
                    pass
            results["children"] = [c.name for c in node.children]

        threads = [
            threading.Thread(target=target) for target in (scope_a, scope_b)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        assert results["children"] == ["a.inner"]
        assert not trace.is_enabled()

    def test_scope_exit_preserves_user_enabled_state(self):
        obs.enable()
        with record_subtree("exec.shard"):
            pass
        assert trace.is_enabled()

    def test_serialised_subtree_grafts_into_live_tree(self):
        # The full round trip run_sharded performs: worker-side capture,
        # to_dict over the process boundary, graft on the submitting side.
        with record_subtree("exec.shard", shard=0) as worker_node:
            pass
        doc = pickle.loads(pickle.dumps(worker_node.to_dict()))
        obs.enable()
        with obs.span("service.job"):
            obs.graft([doc])
        (snap,) = obs.trace_snapshot()
        assert snap["children"][0]["name"] == "exec.shard"
        assert snap["children"][0]["span_id"] == worker_node.span_id
