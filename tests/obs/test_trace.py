"""Tests for the span/trace-tree primitive."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import NOOP_SPAN, SpanNode


class TestDisabledMode:
    def test_disabled_span_is_shared_noop(self):
        # Zero-cost requirement: a disabled span() call must not allocate
        # a trace node — every call returns the same singleton.
        assert obs.span("a") is NOOP_SPAN
        assert obs.span("b", attr=1) is obs.span("c")

    def test_disabled_span_records_nothing(self):
        with obs.span("stage") as node:
            node.set(key="value")
        assert obs.trace_snapshot() == []
        assert obs.current_span() is None

    def test_enable_disable_roundtrip(self):
        assert not obs.is_enabled()
        obs.enable()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()


class TestSpanTree:
    def test_nesting(self):
        obs.enable()
        with obs.span("root"):
            with obs.span("child_a"):
                with obs.span("grandchild"):
                    pass
            with obs.span("child_b"):
                pass
        (root,) = obs.trace_snapshot()
        assert root["name"] == "root"
        names = [c["name"] for c in root["children"]]
        assert names == ["child_a", "child_b"]
        assert root["children"][0]["children"][0]["name"] == "grandchild"

    def test_wall_time_nonnegative_and_nested_leq_parent(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                sum(range(1000))
        (outer,) = obs.trace_snapshot()
        inner = outer["children"][0]
        assert 0.0 <= inner["wall_time_s"] <= outer["wall_time_s"]

    def test_attributes_at_open_and_via_set(self):
        obs.enable()
        with obs.span("stage", blocks=8) as node:
            node.set(factors=37)
        (snap,) = obs.trace_snapshot()
        assert snap["attrs"] == {"blocks": 8, "factors": 37}

    def test_current_span(self):
        obs.enable()
        assert obs.current_span() is None
        with obs.span("outer"):
            assert obs.current_span().name == "outer"
            with obs.span("inner"):
                assert obs.current_span().name == "inner"
            assert obs.current_span().name == "outer"
        assert obs.current_span() is None

    def test_exception_safety(self):
        obs.enable()
        with pytest.raises(ValueError, match="boom"):
            with obs.span("root"):
                with obs.span("failing"):
                    raise ValueError("boom")
        # Both spans closed, error recorded, stack unwound.
        (root,) = obs.trace_snapshot()
        failing = root["children"][0]
        assert failing["error"] == "ValueError: boom"
        assert root["error"] == "ValueError: boom"
        assert obs.current_span() is None
        # The tree is still usable after the exception.
        with obs.span("after"):
            pass
        assert [n["name"] for n in obs.trace_snapshot()] == ["root", "after"]

    def test_json_round_trip(self):
        obs.enable()
        with obs.span("root", design="C4", blocks=12):
            with obs.span("child"):
                pass
        snapshot = obs.trace_snapshot()
        restored = json.loads(json.dumps(snapshot))
        assert restored == snapshot

    def test_reset_clears_tree(self):
        obs.enable()
        with obs.span("stage"):
            pass
        assert obs.trace_snapshot()
        obs.reset()
        assert obs.trace_snapshot() == []

    def test_threads_get_independent_roots(self):
        obs.enable()
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait(timeout=5)
            with obs.span("worker_root"):
                pass

        with obs.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            barrier.wait(timeout=5)
            thread.join(timeout=5)
        names = {node["name"] for node in obs.trace_snapshot()}
        # The worker's span is a root of its own, not a child of main_root.
        assert names == {"main_root", "worker_root"}

    def test_enabled_context_manager(self):
        with obs.enabled():
            assert obs.is_enabled()
            with obs.span("inside"):
                pass
            assert obs.trace_snapshot()
        assert not obs.is_enabled()


class FakeClock:
    """A deterministic monotonic clock advancing by ``step`` per read."""

    def __init__(self, start: float = 100.0, step: float = 0.25) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestClockInjection:
    def test_default_clock_is_perf_counter(self):
        import time

        assert obs.get_clock() is time.perf_counter

    def test_injected_clock_makes_timing_deterministic(self):
        obs.enable()
        obs.set_clock(FakeClock(start=10.0, step=0.5))
        with obs.span("timed"):
            pass
        (snap,) = obs.trace_snapshot()
        # One read at open (10.0), one at close (10.5).
        assert snap["wall_time_s"] == pytest.approx(0.5)

    def test_set_clock_none_restores_default(self):
        import time

        obs.set_clock(FakeClock())
        obs.set_clock(None)
        assert obs.get_clock() is time.perf_counter


class TestSpanIdentityAndSerialization:
    def test_span_ids_are_unique_short_tokens(self):
        obs.enable()
        with obs.span("a") as node_a:
            with obs.span("b") as node_b:
                pass
        assert node_a.span_id != node_b.span_id
        assert len(node_a.span_id) == 16
        assert node_a.to_dict()["span_id"] == node_a.span_id

    def test_from_dict_round_trip(self):
        obs.enable()
        with obs.span("root", design="C2") as root:
            with obs.span("child"):
                pass
        doc = root.to_dict()
        restored = SpanNode.from_dict(doc)
        assert restored.name == "root"
        assert restored.span_id == root.span_id
        assert restored.attrs == {"design": "C2"}
        assert restored.wall_time == pytest.approx(doc["wall_time_s"])
        assert [c.name for c in restored.children] == ["child"]
        # Round-tripping the rehydrated node reproduces the document.
        assert restored.to_dict() == doc

    def test_from_dict_records_error(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("boom") as node:
                raise RuntimeError("nope")
        restored = SpanNode.from_dict(node.to_dict())
        assert restored.error == "RuntimeError: nope"


class TestGraft:
    def _foreign_doc(self, name="exec.shard", **attrs):
        return {
            "name": name,
            "span_id": "feedfacecafebeef",
            "wall_time_s": 0.125,
            "attrs": attrs or {"shard": 0},
        }

    def test_graft_under_open_span(self):
        obs.enable()
        with obs.span("service.job") as parent:
            grafted = obs.graft([self._foreign_doc()])
        assert len(grafted) == 1
        (snap,) = obs.trace_snapshot()
        child = snap["children"][0]
        assert child["name"] == "exec.shard"
        assert child["span_id"] == "feedfacecafebeef"
        assert child["wall_time_s"] == pytest.approx(0.125)

    def test_graft_without_open_span_becomes_root(self):
        obs.enable()
        obs.graft([self._foreign_doc()])
        names = [node["name"] for node in obs.trace_snapshot()]
        assert names == ["exec.shard"]

    def test_graft_noop_when_disabled_or_empty(self):
        assert obs.graft([self._foreign_doc()]) == []
        obs.enable()
        assert obs.graft([]) == []
        assert obs.trace_snapshot() == []
