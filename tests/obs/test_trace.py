"""Tests for the span/trace-tree primitive."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import NOOP_SPAN


class TestDisabledMode:
    def test_disabled_span_is_shared_noop(self):
        # Zero-cost requirement: a disabled span() call must not allocate
        # a trace node — every call returns the same singleton.
        assert obs.span("a") is NOOP_SPAN
        assert obs.span("b", attr=1) is obs.span("c")

    def test_disabled_span_records_nothing(self):
        with obs.span("stage") as node:
            node.set(key="value")
        assert obs.trace_snapshot() == []
        assert obs.current_span() is None

    def test_enable_disable_roundtrip(self):
        assert not obs.is_enabled()
        obs.enable()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()


class TestSpanTree:
    def test_nesting(self):
        obs.enable()
        with obs.span("root"):
            with obs.span("child_a"):
                with obs.span("grandchild"):
                    pass
            with obs.span("child_b"):
                pass
        (root,) = obs.trace_snapshot()
        assert root["name"] == "root"
        names = [c["name"] for c in root["children"]]
        assert names == ["child_a", "child_b"]
        assert root["children"][0]["children"][0]["name"] == "grandchild"

    def test_wall_time_nonnegative_and_nested_leq_parent(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                sum(range(1000))
        (outer,) = obs.trace_snapshot()
        inner = outer["children"][0]
        assert 0.0 <= inner["wall_time_s"] <= outer["wall_time_s"]

    def test_attributes_at_open_and_via_set(self):
        obs.enable()
        with obs.span("stage", blocks=8) as node:
            node.set(factors=37)
        (snap,) = obs.trace_snapshot()
        assert snap["attrs"] == {"blocks": 8, "factors": 37}

    def test_current_span(self):
        obs.enable()
        assert obs.current_span() is None
        with obs.span("outer"):
            assert obs.current_span().name == "outer"
            with obs.span("inner"):
                assert obs.current_span().name == "inner"
            assert obs.current_span().name == "outer"
        assert obs.current_span() is None

    def test_exception_safety(self):
        obs.enable()
        with pytest.raises(ValueError, match="boom"):
            with obs.span("root"):
                with obs.span("failing"):
                    raise ValueError("boom")
        # Both spans closed, error recorded, stack unwound.
        (root,) = obs.trace_snapshot()
        failing = root["children"][0]
        assert failing["error"] == "ValueError: boom"
        assert root["error"] == "ValueError: boom"
        assert obs.current_span() is None
        # The tree is still usable after the exception.
        with obs.span("after"):
            pass
        assert [n["name"] for n in obs.trace_snapshot()] == ["root", "after"]

    def test_json_round_trip(self):
        obs.enable()
        with obs.span("root", design="C4", blocks=12):
            with obs.span("child"):
                pass
        snapshot = obs.trace_snapshot()
        restored = json.loads(json.dumps(snapshot))
        assert restored == snapshot

    def test_reset_clears_tree(self):
        obs.enable()
        with obs.span("stage"):
            pass
        assert obs.trace_snapshot()
        obs.reset()
        assert obs.trace_snapshot() == []

    def test_threads_get_independent_roots(self):
        obs.enable()
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait(timeout=5)
            with obs.span("worker_root"):
                pass

        with obs.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            barrier.wait(timeout=5)
            thread.join(timeout=5)
        names = {node["name"] for node in obs.trace_snapshot()}
        # The worker's span is a root of its own, not a child of main_root.
        assert names == {"main_root", "worker_root"}

    def test_enabled_context_manager(self):
        with obs.enabled():
            assert obs.is_enabled()
            with obs.span("inside"):
                pass
            assert obs.trace_snapshot()
        assert not obs.is_enabled()
