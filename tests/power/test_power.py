"""Unit tests for the architectural power model and activity profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SolverError
from repro.power.activity import (
    ActivityProfile,
    available_presets,
    classify_block,
)
from repro.power.loop import solve_power_thermal
from repro.power.model import BlockPowerModel, PowerModelParams
from repro.thermal.hotspot import HotSpotLite


class TestClassifyBlock:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("icache", "cache"),
            ("l2_left", "cache"),
            ("intexec", "integer"),
            ("fpmul", "floating"),
            ("bpred", "frontend"),
            ("mystery", "other"),
        ],
    )
    def test_keyword_classification(self, name, expected):
        assert classify_block(name) == expected


class TestActivityProfile:
    def test_presets_exist(self):
        assert "typical" in available_presets()
        assert "idle" in available_presets()

    def test_preset_covers_all_blocks(self, tiny_floorplan):
        profile = ActivityProfile.preset("typical", tiny_floorplan)
        for name in tiny_floorplan.block_names:
            assert 0.0 <= profile.factor(name) <= 1.0

    def test_unknown_preset_rejected(self, tiny_floorplan):
        with pytest.raises(ConfigurationError):
            ActivityProfile.preset("warp_speed", tiny_floorplan)

    def test_default_for_unknown_block(self):
        profile = ActivityProfile(name="x", factors={"a": 0.9}, default=0.3)
        assert profile.factor("a") == 0.9
        assert profile.factor("zzz") == 0.3

    def test_rejects_out_of_range_factor(self):
        with pytest.raises(ConfigurationError):
            ActivityProfile(name="x", factors={"a": 1.5})

    def test_idle_below_typical(self, tiny_floorplan):
        idle = ActivityProfile.preset("idle", tiny_floorplan)
        typical = ActivityProfile.preset("typical", tiny_floorplan)
        for name in tiny_floorplan.block_names:
            assert idle.factor(name) < typical.factor(name)


class TestBlockPowerModel:
    def test_dynamic_power_scales_with_activity(self):
        model = BlockPowerModel()
        assert model.dynamic_power(2.0, 0.8) == pytest.approx(
            2.0 * model.dynamic_power(2.0, 0.4)
        )

    def test_dynamic_power_scales_with_vdd_squared(self):
        low = BlockPowerModel(PowerModelParams(vdd=1.0))
        high = BlockPowerModel(PowerModelParams(vdd=2.0))
        assert high.dynamic_power(1.0, 0.5) == pytest.approx(
            4.0 * low.dynamic_power(1.0, 0.5)
        )

    def test_leakage_grows_exponentially_with_temperature(self):
        model = BlockPowerModel()
        p = model.params
        ratio = model.leakage_power(1.0, p.leak_temp_ref + 23.1) / (
            model.leakage_power(1.0, p.leak_temp_ref)
        )
        assert ratio == pytest.approx(np.exp(p.leak_temp_slope * 23.1))

    def test_floorplan_powers_keys(self, tiny_floorplan):
        model = BlockPowerModel()
        profile = ActivityProfile.preset("typical", tiny_floorplan)
        powers = model.floorplan_powers(tiny_floorplan, profile)
        assert set(powers) == set(tiny_floorplan.block_names)
        assert all(p > 0.0 for p in powers.values())

    def test_floorplan_powers_temperature_shape_checked(self, tiny_floorplan):
        model = BlockPowerModel()
        profile = ActivityProfile.preset("typical", tiny_floorplan)
        with pytest.raises(ConfigurationError):
            model.floorplan_powers(tiny_floorplan, profile, np.zeros(5))

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            PowerModelParams(vdd=0.0)
        with pytest.raises(ConfigurationError):
            PowerModelParams(leak_temp_slope=-0.1)


class TestPowerThermalLoop:
    def test_converges_on_tiny_design(self, tiny_floorplan):
        profile = ActivityProfile.preset("typical", tiny_floorplan)
        solution = solve_power_thermal(tiny_floorplan, profile)
        assert solution.iterations < 25
        assert np.all(solution.block_temperatures > 0.0)
        # Converged powers are installed on the floorplan copy.
        assert solution.floorplan.total_power > 0.0

    def test_hotter_workload_hotter_chip(self, tiny_floorplan):
        idle = solve_power_thermal(
            tiny_floorplan, ActivityProfile.preset("idle", tiny_floorplan)
        )
        busy = solve_power_thermal(
            tiny_floorplan, ActivityProfile.preset("int_heavy", tiny_floorplan)
        )
        assert (
            busy.block_temperatures.max() > idle.block_temperatures.max()
        )

    def test_leakage_feedback_raises_power(self, tiny_floorplan):
        # The converged power must exceed the cold-chip estimate because
        # leakage grows with the self-heated temperature.
        profile = ActivityProfile.preset("typical", tiny_floorplan)
        model = BlockPowerModel()
        cold = sum(
            model.floorplan_powers(tiny_floorplan, profile).values()
        )
        solution = solve_power_thermal(tiny_floorplan, profile, power_model=model)
        thermal = HotSpotLite().analyze(solution.floorplan)
        assert solution.floorplan.total_power > 0.9 * cold
        np.testing.assert_allclose(
            thermal.block_temperatures,
            solution.block_temperatures,
            atol=0.2,
        )

    def test_runaway_detected(self, tiny_floorplan):
        # An absurd leakage slope prevents convergence.
        params = PowerModelParams(leak_density_ref=5.0, leak_temp_slope=0.5)
        profile = ActivityProfile.preset("typical", tiny_floorplan)
        with pytest.raises(SolverError):
            solve_power_thermal(
                tiny_floorplan,
                profile,
                power_model=BlockPowerModel(params),
                max_iterations=8,
            )
