"""Property-based tests: execution scheduling never changes results.

The deterministic-sharding contract (see ``docs/execution.md``) promises
that Monte-Carlo results are a function of the seed and the shard size
alone — never of the chunk size, the backend, or the worker count.  These
tests let hypothesis hunt for scheduling parameters that break that.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.montecarlo import MonteCarloEngine
from repro.exec import SerialBackend, ThreadBackend

TIMES = np.logspace(5.0, 7.0, 4)


def _engine(analyzer, *, chunk_size, backend):
    return MonteCarloEngine(
        analyzer.sampler,
        analyzer.blocks,
        device_mode=analyzer.config.mc_device_mode,
        chunk_size=chunk_size,
        backend=backend,
    )


class TestSchedulingInvariance:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        chunk_a=st.integers(min_value=1, max_value=97),
        chunk_b=st.integers(min_value=98, max_value=400),
    )
    @settings(max_examples=8, deadline=None)
    def test_curve_independent_of_chunk_size(
        self, small_analyzer, seed, chunk_a, chunk_b
    ):
        first = _engine(
            small_analyzer, chunk_size=chunk_a, backend=SerialBackend()
        ).reliability_curve(TIMES, 96, seed)
        second = _engine(
            small_analyzer, chunk_size=chunk_b, backend=SerialBackend()
        ).reliability_curve(TIMES, 96, seed)
        np.testing.assert_array_equal(first.reliability, second.reliability)
        np.testing.assert_array_equal(first.std_error, second.std_error)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        jobs=st.integers(min_value=2, max_value=4),
        n_chips=st.integers(min_value=2, max_value=200),
    )
    @settings(max_examples=8, deadline=None)
    def test_thread_backend_matches_serial(
        self, small_analyzer, seed, jobs, n_chips
    ):
        serial = _engine(
            small_analyzer, chunk_size=64, backend=SerialBackend()
        ).reliability_curve(TIMES, n_chips, seed)
        threaded_backend = ThreadBackend(jobs)
        try:
            threaded = _engine(
                small_analyzer, chunk_size=64, backend=threaded_backend
            ).reliability_curve(TIMES, n_chips, seed)
        finally:
            threaded_backend.close()
        np.testing.assert_array_equal(serial.reliability, threaded.reliability)
        np.testing.assert_array_equal(serial.std_error, threaded.std_error)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        chunk=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=8, deadline=None)
    def test_failure_times_independent_of_chunk_size(
        self, small_analyzer, seed, chunk
    ):
        baseline = _engine(
            small_analyzer, chunk_size=128, backend=SerialBackend()
        ).failure_times(64, seed)
        varied = _engine(
            small_analyzer, chunk_size=chunk, backend=SerialBackend()
        ).failure_times(64, seed)
        np.testing.assert_array_equal(baseline, varied)
