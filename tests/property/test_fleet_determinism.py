"""Property test: the remote fleet backend never changes the answer.

For any worker count, shard-group size and (seeded) worker-kill
schedule, a :class:`FleetCoordinator` run over the in-process
:class:`FakeTransport` must produce a payload byte-identical to the
serial ``run_job`` evaluation.  One worker is always immortal so the run
can complete; every other worker may die after any number of completed
shard groups, exercising the reassignment path under hypothesis's
shrinking.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FakeTransport, FleetCoordinator
from repro.payloads import dump_payload
from repro.service.requests import JobRequest, run_job

REQUEST_DOC = {
    "kind": "lifetime",
    "design": "C1",
    "grid": 6,
    "methods": ["mc"],
    "mc_chips": 200,
    "seed": 11,
}


@pytest.fixture(scope="module")
def serial_bytes():
    return dump_payload(run_job(JobRequest.from_dict(dict(REQUEST_DOC))))


class TestRemoteBackendDeterminism:
    @given(
        n_mortal=st.integers(min_value=0, max_value=3),
        group_size=st.integers(min_value=1, max_value=8),
        kill_budgets=st.lists(
            st.integers(min_value=0, max_value=3), min_size=3, max_size=3
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_bit_identical_for_any_topology_and_kill_schedule(
        self, serial_bytes, n_mortal, group_size, kill_budgets
    ):
        workers = ["http://immortal"] + [
            f"http://mortal{i}" for i in range(n_mortal)
        ]
        kill_schedule = {
            f"http://mortal{i}": kill_budgets[i] for i in range(n_mortal)
        }
        transport = FakeTransport(kill_schedule=kill_schedule)
        coordinator = FleetCoordinator(
            workers,
            transport=transport,
            group_size=group_size,
            shared_cache=False,
        )
        payload = coordinator.run(
            JobRequest.from_dict(dict(REQUEST_DOC))
        )
        assert dump_payload(payload) == serial_bytes
        stats = coordinator.last_run_stats
        assert stats["workers_lost"] <= n_mortal
        assert stats["shards"] == 4
