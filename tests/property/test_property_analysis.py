"""Property-based tests on the analysis pipeline invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AnalysisConfig,
    ReliabilityAnalyzer,
    VariationBudget,
    make_synthetic_design,
)
from repro.core.lifetime import ppm_to_reliability


@st.composite
def budgets(draw):
    g = draw(st.floats(min_value=0.1, max_value=0.8))
    # 0.9 - g can round to just under 0.1 when g draws its max, which
    # would give st.floats an empty interval.
    s = draw(st.floats(min_value=0.1, max_value=max(0.1, 0.9 - g)))
    return VariationBudget(
        nominal_thickness=draw(st.floats(min_value=1.5, max_value=3.0)),
        three_sigma_ratio=draw(st.floats(min_value=0.01, max_value=0.08)),
        global_fraction=g,
        spatial_fraction=s,
        independent_fraction=1.0 - g - s,
    )


_CONFIG = AnalysisConfig(grid_size=4, st_mc_samples=1000)


class TestAnalyzerProperties:
    @given(budgets(), st.integers(min_value=0, max_value=10000))
    @settings(max_examples=10, deadline=None)
    def test_lifetime_positive_and_guard_pessimistic(self, budget, seed):
        design = make_synthetic_design("P", 3000, 3, 2.0, seed=seed)
        analyzer = ReliabilityAnalyzer(design, budget=budget, config=_CONFIG)
        lt_stat = analyzer.lifetime(10)
        lt_guard = analyzer.lifetime(10, method="guard")
        assert lt_stat > 0.0
        assert lt_guard <= lt_stat

    @given(st.integers(min_value=0, max_value=10000))
    @settings(max_examples=8, deadline=None)
    def test_reliability_curve_valid(self, seed):
        design = make_synthetic_design("P", 3000, 3, 2.0, seed=seed)
        analyzer = ReliabilityAnalyzer(design, config=_CONFIG)
        t10 = analyzer.lifetime(10)
        times = np.logspace(np.log10(t10) - 1.0, np.log10(t10) + 2.0, 15)
        r = np.asarray(analyzer.reliability(times))
        assert np.all((0.0 <= r) & (r <= 1.0))
        assert np.all(np.diff(r) <= 1e-12)

    @given(
        st.floats(min_value=0.5, max_value=500.0),
        st.floats(min_value=1.5, max_value=10.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_lifetime_monotone_in_ppm(self, ppm, factor):
        design = make_synthetic_design("P", 3000, 3, 2.0, seed=11)
        analyzer = ReliabilityAnalyzer(design, config=_CONFIG)
        assert analyzer.lifetime(ppm) < analyzer.lifetime(ppm * factor)

    @given(st.floats(min_value=0.5, max_value=1000.0))
    @settings(max_examples=10, deadline=None)
    def test_lifetime_solves_target(self, ppm):
        design = make_synthetic_design("P", 3000, 3, 2.0, seed=13)
        analyzer = ReliabilityAnalyzer(design, config=_CONFIG)
        t = analyzer.lifetime(ppm)
        assert float(analyzer.reliability(t)) == pytest.approx(
            ppm_to_reliability(ppm), abs=1e-9
        )
