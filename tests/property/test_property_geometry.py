"""Property-based tests for geometry invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.geometry import GridSpec, Rect

finite_coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
positive_size = st.floats(
    min_value=1e-3, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    return Rect(
        draw(finite_coord),
        draw(finite_coord),
        draw(positive_size),
        draw(positive_size),
    )


@st.composite
def grids(draw):
    return GridSpec(
        nx=draw(st.integers(min_value=1, max_value=12)),
        ny=draw(st.integers(min_value=1, max_value=12)),
        width=draw(positive_size),
        height=draw(positive_size),
    )


class TestRectProperties:
    @given(rects(), rects())
    def test_overlap_symmetric(self, a, b):
        assert a.overlap_area(b) == b.overlap_area(a)

    @given(rects(), rects())
    def test_overlap_bounded_by_smaller_area(self, a, b):
        overlap = a.overlap_area(b)
        assert 0.0 <= overlap <= min(a.area, b.area) + 1e-9

    @given(rects())
    def test_self_overlap_is_area(self, rect):
        # (x + w) - x need not equal w in floating point: compare approx.
        assert abs(rect.overlap_area(rect) - rect.area) <= 1e-9 * rect.area

    @given(rects(), st.floats(min_value=0.01, max_value=0.99))
    def test_split_partitions_area(self, rect, fraction):
        for first, second in (
            rect.split_horizontal(fraction),
            rect.split_vertical(fraction),
        ):
            assert first.area + second.area == np.float64(rect.area) or abs(
                first.area + second.area - rect.area
            ) < 1e-9 * rect.area
            assert first.overlap_area(second) == 0.0
            assert rect.contains_rect(first)
            assert rect.contains_rect(second)

    @given(rects(), rects())
    def test_intersection_consistent_with_overlap(self, a, b):
        inter = a.intersection(b)
        if inter is None:
            assert a.overlap_area(b) == 0.0
        else:
            assert abs(inter.area - a.overlap_area(b)) < 1e-9
            assert a.contains_rect(inter, tol=1e-9)
            assert b.contains_rect(inter, tol=1e-9)

    @given(rects(), rects())
    def test_distance_symmetric_nonnegative(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)
        assert a.distance_to(b) >= 0.0
        assert a.distance_to(a) == 0.0


class TestGridProperties:
    @given(grids())
    def test_cells_partition_die(self, grid):
        total = sum(grid.cell_rect(i).area for i in range(grid.n_cells))
        assert abs(total - grid.width * grid.height) < 1e-6 * grid.width * grid.height

    @given(grids(), st.data())
    def test_cell_of_point_matches_cell_rect(self, grid, data):
        index = data.draw(st.integers(min_value=0, max_value=grid.n_cells - 1))
        cx, cy = grid.cell_rect(index).center
        assert grid.cell_of_point(cx, cy) == index

    @given(grids(), st.data())
    @settings(max_examples=40)
    def test_overlap_fractions_normalised_for_inner_rects(self, grid, data):
        # Any rectangle on the die distributes exactly its full area.
        fx = data.draw(st.floats(min_value=0.0, max_value=0.8))
        fy = data.draw(st.floats(min_value=0.0, max_value=0.8))
        fw = data.draw(st.floats(min_value=0.05, max_value=1.0 - fx - 1e-6))
        fh = data.draw(st.floats(min_value=0.05, max_value=1.0 - fy - 1e-6))
        rect = Rect(
            fx * grid.width, fy * grid.height, fw * grid.width, fh * grid.height
        )
        fractions = grid.overlap_fractions(rect)
        assert abs(fractions.sum() - 1.0) < 1e-9
        assert np.all(fractions >= 0.0)

    @given(grids())
    def test_pairwise_distances_metric(self, grid):
        dist = grid.pairwise_center_distances()
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)
        if grid.n_cells >= 3:
            # Triangle inequality on a few triples.
            n = grid.n_cells
            for (i, j, k) in [(0, n // 2, n - 1), (0, 1, n - 1)]:
                assert dist[i, k] <= dist[i, j] + dist[j, k] + 1e-9
