"""Property-based tests for the cumulative-exposure mission model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mission import effective_block_params

alphas = st.floats(min_value=1e2, max_value=1e12)
bs = st.floats(min_value=0.5, max_value=3.0)


@st.composite
def phase_systems(draw):
    n_phases = draw(st.integers(min_value=1, max_value=5))
    n_blocks = draw(st.integers(min_value=1, max_value=4))
    raw = [
        draw(st.floats(min_value=0.05, max_value=1.0))
        for _ in range(n_phases)
    ]
    fractions = np.array(raw) / np.sum(raw)
    alpha_matrix = np.array(
        [[draw(alphas) for _ in range(n_blocks)] for _ in range(n_phases)]
    )
    b_matrix = np.array(
        [[draw(bs) for _ in range(n_blocks)] for _ in range(n_phases)]
    )
    return fractions, alpha_matrix, b_matrix


class TestEffectiveParamsProperties:
    @given(phase_systems())
    @settings(max_examples=100)
    def test_effective_alpha_within_phase_range(self, system):
        fractions, alphas_m, bs_m = system
        alpha_eff, b_eff = effective_block_params(fractions, alphas_m, bs_m)
        for j in range(alphas_m.shape[1]):
            lo, hi = alphas_m[:, j].min(), alphas_m[:, j].max()
            assert lo * (1.0 - 1e-12) <= alpha_eff[j] <= hi * (1.0 + 1e-12)
            b_lo, b_hi = bs_m[:, j].min(), bs_m[:, j].max()
            assert b_lo * (1.0 - 1e-12) <= b_eff[j] <= b_hi * (1.0 + 1e-12)

    @given(phase_systems())
    @settings(max_examples=60)
    def test_harmonic_mean_below_arithmetic(self, system):
        fractions, alphas_m, bs_m = system
        alpha_eff, _ = effective_block_params(fractions, alphas_m, bs_m)
        arithmetic = fractions @ alphas_m
        assert np.all(alpha_eff <= arithmetic + 1e-6 * arithmetic)

    @given(phase_systems(), st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=60)
    def test_scaling_equivariance(self, system, scale):
        """Scaling every phase alpha scales the effective alpha."""
        fractions, alphas_m, bs_m = system
        base, _ = effective_block_params(fractions, alphas_m, bs_m)
        scaled, _ = effective_block_params(fractions, scale * alphas_m, bs_m)
        np.testing.assert_allclose(scaled, scale * base, rtol=1e-9)

    @given(phase_systems())
    @settings(max_examples=60)
    def test_permutation_invariance(self, system):
        fractions, alphas_m, bs_m = system
        order = np.arange(len(fractions))[::-1]
        base = effective_block_params(fractions, alphas_m, bs_m)
        permuted = effective_block_params(
            fractions[order], alphas_m[order], bs_m[order]
        )
        np.testing.assert_allclose(base[0], permuted[0], rtol=1e-12)
        np.testing.assert_allclose(base[1], permuted[1], rtol=1e-12)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        alphas,
        st.floats(min_value=1.5, max_value=100.0),
        bs,
    )
    @settings(max_examples=60)
    def test_worse_phase_shortens_effective_alpha(
        self, fraction, alpha, degradation, b
    ):
        fractions = np.array([1.0 - fraction, fraction])
        bs_m = np.full((2, 1), b)
        mild = np.array([[alpha], [alpha]])
        harsh = np.array([[alpha], [alpha / degradation]])
        alpha_mild, _ = effective_block_params(fractions, mild, bs_m)
        alpha_harsh, _ = effective_block_params(fractions, harsh, bs_m)
        assert alpha_harsh[0] < alpha_mild[0] + 1e-9
