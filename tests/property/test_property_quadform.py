"""Property-based tests for quadratic-form distribution invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.quadform import QuadraticForm

dims = st.integers(min_value=1, max_value=6)


@st.composite
def psd_forms(draw):
    dim = draw(dims)
    raw = draw(
        arrays(
            dtype=np.float64,
            shape=(dim, dim),
            elements=st.floats(min_value=-2.0, max_value=2.0),
        )
    )
    matrix = raw @ raw.T / dim + 1e-6 * np.eye(dim)
    offset = draw(st.floats(min_value=0.0, max_value=10.0))
    return QuadraticForm(offset=offset, matrix=matrix)


class TestQuadraticFormProperties:
    @given(psd_forms())
    def test_mean_at_least_offset(self, form):
        assert form.mean() >= form.offset

    @given(psd_forms())
    def test_variance_nonnegative(self, form):
        assert form.var() >= 0.0

    @given(psd_forms())
    def test_psd_forms_right_skewed(self, form):
        assert form.skewness() >= -1e-12

    @given(psd_forms())
    @settings(max_examples=30)
    def test_chi2_match_preserves_two_moments(self, form):
        match = form.chi2_match()
        assert abs(match.mean() - form.mean()) < 1e-9 * max(form.mean(), 1.0)
        assert abs(match.var() - form.var()) < 1e-9 * max(form.var(), 1.0)

    @given(psd_forms())
    @settings(max_examples=30)
    def test_chi2_match_cdf_monotone_bounded(self, form):
        match = form.chi2_match()
        xs = np.linspace(match.ppf(1e-6), match.ppf(1.0 - 1e-6), 25)
        cdf = match.cdf(xs)
        assert np.all(cdf >= 0.0)
        assert np.all(cdf <= 1.0)
        assert np.all(np.diff(cdf) >= -1e-12)

    @given(psd_forms(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20)
    def test_samples_above_offset(self, form, seed):
        samples = form.sample(np.random.default_rng(seed), 200)
        assert np.all(samples >= form.offset - 1e-9)

    @given(psd_forms(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15)
    def test_factor_evaluation_matches_mixture_distribution(self, form, seed):
        """Both sampling paths draw from the same distribution: compare
        means (cheap two-sample check)."""
        rng = np.random.default_rng(seed)
        direct = form.sample(rng, 4000)
        z = rng.standard_normal((4000, form.matrix.shape[0]))
        via_factors = form.sample_from_factors(z)
        sd = max(form.std(), 1e-12)
        assert abs(direct.mean() - via_factors.mean()) < 6.0 * sd / np.sqrt(4000) + 1e-9

    @given(psd_forms())
    @settings(max_examples=10, deadline=None)
    def test_imhof_consistent_with_chi2_match_median(self, form):
        match = form.chi2_match()
        median = float(match.ppf(0.5))
        imhof = form.imhof_cdf(median)
        # Two-moment match is accurate near the bulk.
        assert abs(imhof - 0.5) < 0.15
