"""Property-based tests for the ordered-phase scenario engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.scenario import Scenario, ScenarioAnalyzer, StressPhase

durations = st.floats(min_value=10.0, max_value=5e3)
temperatures = st.floats(min_value=40.0, max_value=120.0)


@st.composite
def finite_phases(draw, min_phases=2, max_phases=4):
    """A list of (duration, temperature) finite-phase specs."""
    n = draw(st.integers(min_value=min_phases, max_value=max_phases))
    return [
        (draw(durations), draw(temperatures)) for _ in range(n)
    ]


def _scenario(finite, final_temp=75.0):
    phases = [
        StressPhase(
            name=f"p{i}", duration_hours=duration, temperature_c=temp
        )
        for i, (duration, temp) in enumerate(finite)
    ]
    phases.append(StressPhase(name="final", temperature_c=final_temp))
    return Scenario(phases=tuple(phases))


class TestOrderedScenarioProperties:
    @given(finite_phases(), st.randoms(use_true_random=False))
    @settings(max_examples=15, deadline=None)
    def test_finite_phase_order_invariance(
        self, small_analyzer, finite, random
    ):
        """Past the finite span, only the accumulated dose matters."""
        shuffled = list(finite)
        random.shuffle(shuffled)
        total = sum(duration for duration, _ in finite)
        times = np.array([total, 2.0 * total, 10.0 * total])
        base = ScenarioAnalyzer(small_analyzer, _scenario(finite))
        perm = ScenarioAnalyzer(small_analyzer, _scenario(shuffled))
        np.testing.assert_allclose(
            perm.reliability(times), base.reliability(times), rtol=1e-9
        )

    @given(
        durations,
        temperatures,
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=15, deadline=None)
    def test_splitting_a_phase_is_a_no_op(
        self, small_analyzer, duration, temp, cut
    ):
        whole = _scenario([(duration, temp)])
        split = _scenario(
            [(duration * cut, temp), (duration * (1.0 - cut), temp)]
        )
        times = np.array(
            [0.5 * duration, duration, 3.0 * duration, 20.0 * duration]
        )
        r_whole = ScenarioAnalyzer(small_analyzer, whole).reliability(times)
        r_split = ScenarioAnalyzer(small_analyzer, split).reliability(times)
        np.testing.assert_allclose(r_split, r_whole, rtol=1e-9)

    @given(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=2,
            max_size=4,
        ),
        st.floats(min_value=1.05, max_value=3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_unnormalised_residency_fractions_raise(self, raw, skew):
        """Fractions that do not sum to one are a configuration error."""
        fractions = np.array(raw) / np.sum(raw) * skew
        phases = tuple(
            StressPhase(name=f"p{i}", fraction=min(float(f), 1.0))
            for i, f in enumerate(fractions)
        )
        with pytest.raises(ConfigurationError, match="sum to 1"):
            Scenario(phases=phases, composition="residency")
