"""Property-based tests for Weibull and closed-form reliability invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closed_form import (
    block_failure,
    block_survival,
    log_g,
)
from repro.stats.weibull import AreaScaledWeibull, weakest_link_sf

alphas = st.floats(min_value=1e-2, max_value=1e12)
betas = st.floats(min_value=0.2, max_value=8.0)
areas = st.floats(min_value=1e-3, max_value=1e8)
times = st.floats(min_value=0.0, max_value=1e14)


class TestWeibullProperties:
    @given(alphas, betas, areas, times)
    def test_cdf_in_unit_interval(self, alpha, beta, area, t):
        law = AreaScaledWeibull(alpha=alpha, beta=beta, area=area)
        value = law.cdf(t)
        assert 0.0 <= value <= 1.0

    @given(alphas, betas, areas, times, times)
    def test_cdf_monotone(self, alpha, beta, area, t1, t2):
        law = AreaScaledWeibull(alpha=alpha, beta=beta, area=area)
        lo, hi = min(t1, t2), max(t1, t2)
        assert law.cdf(lo) <= law.cdf(hi) + 1e-15

    @given(alphas, betas, areas, st.floats(min_value=1e-9, max_value=1.0 - 1e-9))
    def test_ppf_inverts_cdf(self, alpha, beta, area, q):
        law = AreaScaledWeibull(alpha=alpha, beta=beta, area=area)
        assert law.cdf(law.ppf(q)) == abs(q) or abs(law.cdf(law.ppf(q)) - q) < 1e-9

    @given(alphas, betas, areas, st.floats(min_value=1.1, max_value=100.0), times)
    def test_more_area_less_reliable(self, alpha, beta, area, factor, t):
        small = AreaScaledWeibull(alpha=alpha, beta=beta, area=area)
        large = AreaScaledWeibull(alpha=alpha, beta=beta, area=area * factor)
        assert large.sf(t) <= small.sf(t) + 1e-15

    @given(alphas, betas, st.integers(min_value=1, max_value=6), times)
    def test_weakest_link_never_more_reliable_than_any_member(
        self, alpha, beta, n, t
    ):
        laws = [
            AreaScaledWeibull(alpha=alpha * (1.0 + i), beta=beta, area=1.0 + i)
            for i in range(n)
        ]
        combined = weakest_link_sf(t, laws)
        for law in laws:
            assert combined <= law.sf(t) + 1e-15


u_values = st.floats(min_value=1.5, max_value=3.0)
v_values = st.floats(min_value=0.0, max_value=1e-2)
log_t_ratios = st.floats(min_value=-30.0, max_value=0.0)
b_values = st.floats(min_value=0.3, max_value=3.0)
block_areas = st.floats(min_value=1.0, max_value=1e7)


class TestClosedFormProperties:
    @given(u_values, v_values, log_t_ratios, b_values, block_areas)
    def test_survival_is_probability(self, u, v, lt, b, area):
        s = block_survival(u, v, np.array([lt]), b, area)
        assert 0.0 <= s[0] <= 1.0

    @given(u_values, v_values, log_t_ratios, b_values, block_areas)
    def test_survival_failure_complement(self, u, v, lt, b, area):
        s = block_survival(u, v, np.array([lt]), b, area)
        f = block_failure(u, v, np.array([lt]), b, area)
        assert abs(s[0] + f[0] - 1.0) < 1e-12

    @given(u_values, v_values, b_values, block_areas, st.data())
    @settings(max_examples=60)
    def test_survival_monotone_in_time(self, u, v, b, area, data):
        lt1 = data.draw(log_t_ratios)
        lt2 = data.draw(log_t_ratios)
        lo, hi = min(lt1, lt2), max(lt1, lt2)
        s = block_survival(u, v, np.array([lo, hi]), b, area)
        assert s[0] >= s[1] - 1e-12

    @given(u_values, v_values, log_t_ratios, b_values)
    def test_g_increases_with_variance(self, u, v, lt, b):
        assert log_g(u, v + 1e-4, lt, b) >= log_g(u, v, lt, b)

    @given(u_values, v_values, log_t_ratios, b_values)
    def test_g_decreases_with_thickness(self, u, v, lt, b):
        # Thicker mean oxide -> smaller g -> higher reliability
        # (for t < alpha, i.e. negative log ratio).
        assert log_g(u + 0.1, v, lt, b) <= log_g(u, v, lt, b) + 1e-12

    @given(u_values, v_values, log_t_ratios, b_values, block_areas)
    def test_failure_monotone_in_area(self, u, v, lt, b, area):
        f1 = block_failure(u, v, np.array([lt]), b, area)
        f2 = block_failure(u, v, np.array([lt]), b, 2.0 * area)
        assert f2[0] >= f1[0] - 1e-15
