"""Tests for the scenario evaluation engine."""

import numpy as np
import pytest

from repro import AnalysisConfig, Block, Floorplan, Rect, ReliabilityAnalyzer
from repro.core.mission import (
    MissionProfile,
    OperatingPhase,
    mission_analyzer,
)
from repro.errors import ConfigurationError
from repro.payloads import dump_payload, lifetime_payload, scenario_payload
from repro.scenario import Scenario, ScenarioAnalyzer, StressPhase
from repro.thermal.factor_cache import clear_factor_cache, factor_cache_stats

PPM = 100.0
TIMES = np.logspace(3.0, 5.5, 9)


def _steady(mechanisms=("obd",)) -> Scenario:
    """A degenerate one-phase scenario at the design's operating point."""
    return Scenario(
        phases=(StressPhase(name="field"),), mechanisms=mechanisms
    )


def _two_phase(mechanisms=("obd",)) -> Scenario:
    return Scenario(
        phases=(
            StressPhase(name="burnin", duration_hours=500.0, power_scale=1.4),
            StressPhase(name="field"),
        ),
        mechanisms=mechanisms,
    )


class TestDegenerateScenario:
    """Satellite 1: the regression guard against the steady-state path."""

    def test_payload_byte_identical_to_lifetime(self, small_analyzer):
        document = scenario_payload(small_analyzer, _steady(), ppm=PPM)
        document.pop("scenario")
        reference = lifetime_payload(small_analyzer, PPM, ["st_fast"])
        assert dump_payload(document) == dump_payload(reference)

    def test_reliability_bitwise_vs_host(self, small_analyzer):
        engine = ScenarioAnalyzer(small_analyzer, _steady())
        ours = engine.reliability(TIMES)
        host = small_analyzer.reliability(TIMES, method="st_fast")
        assert np.array_equal(ours, np.atleast_1d(host))

    def test_lifetime_bitwise_vs_host(self, small_analyzer):
        engine = ScenarioAnalyzer(small_analyzer, _steady())
        assert engine.lifetime(PPM) == small_analyzer.lifetime(
            PPM, method="st_fast"
        )

    def test_scalar_time_returns_float(self, small_analyzer):
        engine = ScenarioAnalyzer(small_analyzer, _steady())
        value = engine.reliability(1e4)
        assert isinstance(value, float)
        assert 0.0 <= value <= 1.0


class TestResidencyComposition:
    def test_bitwise_vs_mission_analyzer(self, small_analyzer):
        scenario = Scenario(
            phases=(
                StressPhase(name="idle", fraction=0.6, temperature_c=60.0),
                StressPhase(name="turbo", fraction=0.4, temperature_c=95.0),
            ),
            composition="residency",
        )
        engine = ScenarioAnalyzer(small_analyzer, scenario)
        mission = mission_analyzer(
            small_analyzer,
            MissionProfile(
                phases=(
                    OperatingPhase(
                        name="idle", fraction=0.6, block_temperatures=60.0
                    ),
                    OperatingPhase(
                        name="turbo", fraction=0.4, block_temperatures=95.0
                    ),
                )
            ),
        )
        assert np.array_equal(
            engine.reliability(TIMES),
            np.atleast_1d(mission.reliability(TIMES)),
        )

    def test_phase_damage_matches_residency_weights(self, small_analyzer):
        scenario = Scenario(
            phases=(
                StressPhase(name="idle", fraction=0.6, temperature_c=60.0),
                StressPhase(name="turbo", fraction=0.4, temperature_c=95.0),
            ),
            composition="residency",
        )
        engine = ScenarioAnalyzer(small_analyzer, scenario)
        shares = engine.phase_damage(1e5)
        assert set(shares) == {"idle", "turbo"}
        assert sum(shares.values()) == pytest.approx(1.0)
        # The hot phase dominates the dose despite the smaller residency.
        assert shares["turbo"] > shares["idle"]


class TestOrderedComposition:
    def test_splitting_a_phase_is_a_no_op(self, small_analyzer):
        whole = Scenario(
            phases=(
                StressPhase(
                    name="burnin", duration_hours=500.0, temperature_c=110.0
                ),
                StressPhase(name="field"),
            )
        )
        split = Scenario(
            phases=(
                StressPhase(
                    name="burnin_a", duration_hours=250.0, temperature_c=110.0
                ),
                StressPhase(
                    name="burnin_b", duration_hours=250.0, temperature_c=110.0
                ),
                StressPhase(name="field"),
            )
        )
        r_whole = ScenarioAnalyzer(small_analyzer, whole).reliability(TIMES)
        r_split = ScenarioAnalyzer(small_analyzer, split).reliability(TIMES)
        np.testing.assert_allclose(r_split, r_whole, rtol=1e-12, atol=0.0)

    def test_finite_phase_order_invariant_past_schedule(
        self, small_analyzer
    ):
        forward = Scenario(
            phases=(
                StressPhase(
                    name="hot", duration_hours=300.0, temperature_c=110.0
                ),
                StressPhase(
                    name="cold", duration_hours=700.0, temperature_c=60.0
                ),
                StressPhase(name="field"),
            )
        )
        backward = Scenario(
            phases=(
                StressPhase(
                    name="cold", duration_hours=700.0, temperature_c=60.0
                ),
                StressPhase(
                    name="hot", duration_hours=300.0, temperature_c=110.0
                ),
                StressPhase(name="field"),
            )
        )
        # Beyond the finite span the accumulated dose is the same sum in
        # a different order; within it the trajectories differ.
        times = np.array([1000.0, 5e3, 1e5])
        r_fwd = ScenarioAnalyzer(small_analyzer, forward).reliability(times)
        r_bwd = ScenarioAnalyzer(small_analyzer, backward).reliability(times)
        np.testing.assert_allclose(r_bwd, r_fwd, rtol=1e-12, atol=0.0)

    def test_hot_burnin_shortens_lifetime(self, small_analyzer):
        steady = ScenarioAnalyzer(small_analyzer, _steady()).lifetime(PPM)
        stressed = Scenario(
            phases=(
                StressPhase(
                    name="burnin", duration_hours=2000.0, power_scale=1.5
                ),
                StressPhase(name="field"),
            )
        )
        assert ScenarioAnalyzer(small_analyzer, stressed).lifetime(
            PPM
        ) < steady

    def test_reliability_is_monotone_decreasing(self, small_analyzer):
        engine = ScenarioAnalyzer(small_analyzer, _two_phase())
        values = engine.reliability(np.logspace(2.0, 6.0, 24))
        assert np.all(np.diff(values) <= 0.0)

    def test_phase_damage_sums_to_one(self, small_analyzer):
        engine = ScenarioAnalyzer(small_analyzer, _two_phase())
        shares = engine.phase_damage(engine.lifetime(PPM))
        assert set(shares) == {"burnin", "field"}
        assert all(s >= 0.0 for s in shares.values())
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_single_phase_damage_is_all_one_phase(self, small_analyzer):
        engine = ScenarioAnalyzer(small_analyzer, _steady())
        assert engine.phase_damage(1e5) == {"field": 1.0}


class TestMechanisms:
    def test_entries_grouped_by_mechanism(self, small_analyzer):
        engine = ScenarioAnalyzer(
            small_analyzer, _steady(mechanisms=("obd", "nbti", "em"))
        )
        n_blocks = small_analyzer.floorplan.n_blocks
        assert len(engine.entries) == 3 * n_blocks
        names = [name for name, _ in engine.entries]
        assert names == (
            ["obd"] * n_blocks + ["nbti"] * n_blocks + ["em"] * n_blocks
        )

    def test_mechanism_damage_decomposes(self, small_analyzer):
        engine = ScenarioAnalyzer(
            small_analyzer, _two_phase(mechanisms=("obd", "nbti", "em"))
        )
        shares = engine.mechanism_damage(engine.lifetime(PPM))
        assert set(shares) == {"obd", "nbti", "em"}
        assert all(s >= 0.0 for s in shares.values())
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_more_mechanisms_never_raise_reliability(self, small_analyzer):
        obd_only = ScenarioAnalyzer(small_analyzer, _steady())
        racing = ScenarioAnalyzer(
            small_analyzer, _steady(mechanisms=("obd", "nbti", "em"))
        )
        assert np.all(
            racing.reliability(TIMES) <= obd_only.reliability(TIMES)
        )

    def test_higher_vdd_is_worse(self, small_analyzer):
        def at(vdd):
            scenario = Scenario(
                phases=(StressPhase(name="field", vdd=vdd),),
                mechanisms=("obd", "nbti", "em"),
            )
            return ScenarioAnalyzer(small_analyzer, scenario).reliability(
                TIMES
            )

        assert np.all(at(1.3) <= at(1.0))
        assert np.any(at(1.3) < at(1.0))


class TestThermalResolution:
    def test_power_scale_phases_reuse_lu_factor(self, small_analyzer):
        clear_factor_cache(reset_stats=True)
        scenario = Scenario(
            phases=(
                StressPhase(
                    name="burnin", duration_hours=500.0, power_scale=1.4
                ),
                StressPhase(name="throttled", power_scale=0.8),
            )
        )
        ScenarioAnalyzer(small_analyzer, scenario)
        stats = factor_cache_stats()
        # Same grid + package for every phase: at most one factorisation,
        # every later phase solve is a cached back-substitution.
        assert stats["hits"] >= scenario.n_phases - 1

    def test_power_scale_needs_power(self, tiny_floorplan):
        unpowered = Floorplan(
            width=2.0,
            height=2.0,
            blocks=tuple(
                Block(
                    name=block.name,
                    rect=block.rect,
                    n_devices=block.n_devices,
                    avg_device_area=block.avg_device_area,
                    power=0.0,
                )
                for block in tiny_floorplan.blocks
            ),
        )
        analyzer = ReliabilityAnalyzer(
            unpowered, config=AnalysisConfig(grid_size=6)
        )
        scenario = Scenario(
            phases=(StressPhase(name="field", power_scale=1.2),)
        )
        with pytest.raises(ConfigurationError, match="no power"):
            ScenarioAnalyzer(analyzer, scenario)

    def test_explicit_temperature_vector_checked(self, small_analyzer):
        scenario = Scenario(
            phases=(StressPhase(name="field", temperature_c=(70.0, 90.0)),)
        )
        with pytest.raises(ConfigurationError, match="expected 4"):
            ScenarioAnalyzer(small_analyzer, scenario)


class TestValidation:
    def test_negative_times_rejected(self, small_analyzer):
        engine = ScenarioAnalyzer(small_analyzer, _steady())
        with pytest.raises(ConfigurationError, match="non-negative"):
            engine.entry_failure_probabilities(np.array([-1.0]))
