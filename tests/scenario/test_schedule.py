"""Tests for the scenario schedule document model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenario import Scenario, StressPhase


def _ordered(*phases: StressPhase, **kwargs) -> Scenario:
    return Scenario(phases=phases, **kwargs)


class TestStressPhase:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            StressPhase(name="")

    @pytest.mark.parametrize("duration", [0.0, -1.0, float("inf")])
    def test_rejects_bad_duration(self, duration):
        with pytest.raises(ConfigurationError, match="duration_hours"):
            StressPhase(name="p", duration_hours=duration)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(ConfigurationError, match="fraction"):
            StressPhase(name="p", fraction=fraction)

    def test_rejects_temperature_and_power_scale(self):
        with pytest.raises(ConfigurationError, match="not both"):
            StressPhase(name="p", temperature_c=80.0, power_scale=1.2)

    def test_rejects_nonfinite_temperature(self):
        with pytest.raises(ConfigurationError, match="finite"):
            StressPhase(name="p", temperature_c=float("nan"))

    def test_rejects_empty_temperature_list(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            StressPhase(name="p", temperature_c=[])

    def test_temperature_list_canonicalised_to_tuple(self):
        phase = StressPhase(name="p", temperature_c=[70, 90])
        assert phase.temperature_c == (70.0, 90.0)

    def test_temperatures_for_broadcasts_scalar(self):
        phase = StressPhase(name="p", temperature_c=85.0)
        assert np.array_equal(phase.temperatures_for(3), np.full(3, 85.0))

    def test_temperatures_for_checks_length(self):
        phase = StressPhase(name="p", temperature_c=(70.0, 90.0))
        with pytest.raises(ConfigurationError, match="expected 3"):
            phase.temperatures_for(3)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown phase field"):
            StressPhase.from_dict({"name": "p", "watts": 3.0})

    def test_round_trip(self):
        phase = StressPhase(
            name="burnin",
            duration_hours=168.0,
            temperature_c=(100.0, 120.0),
            vdd=1.3,
        )
        assert StressPhase.from_dict(phase.as_dict()) == phase


class TestScenarioValidation:
    def test_needs_phases(self):
        with pytest.raises(ConfigurationError, match="at least one phase"):
            Scenario(phases=())

    def test_unique_phase_names(self):
        with pytest.raises(ConfigurationError, match="unique"):
            _ordered(
                StressPhase(name="p", duration_hours=1.0),
                StressPhase(name="p"),
            )

    def test_unknown_composition(self):
        with pytest.raises(ConfigurationError, match="composition"):
            _ordered(StressPhase(name="p"), composition="parallel")

    def test_unknown_mechanism(self):
        with pytest.raises(ConfigurationError, match="unknown mechanism"):
            _ordered(StressPhase(name="p"), mechanisms=("rust",))

    def test_duplicate_mechanisms(self):
        with pytest.raises(ConfigurationError, match="unique"):
            _ordered(StressPhase(name="p"), mechanisms=("obd", "obd"))

    def test_ordered_interior_phase_needs_duration(self):
        with pytest.raises(ConfigurationError, match="duration_hours"):
            _ordered(StressPhase(name="a"), StressPhase(name="z"))

    def test_ordered_final_phase_must_be_open_ended(self):
        with pytest.raises(ConfigurationError, match="open-ended|omit"):
            _ordered(
                StressPhase(name="a", duration_hours=10.0),
                StressPhase(name="z", duration_hours=10.0),
            )

    def test_ordered_rejects_fractions(self):
        with pytest.raises(ConfigurationError, match="residency"):
            _ordered(
                StressPhase(name="a", duration_hours=10.0, fraction=0.5),
                StressPhase(name="z"),
            )

    def test_residency_needs_fractions(self):
        with pytest.raises(ConfigurationError, match="fraction"):
            Scenario(
                phases=(StressPhase(name="a"),), composition="residency"
            )

    def test_residency_rejects_durations(self):
        with pytest.raises(ConfigurationError, match="ordered"):
            Scenario(
                phases=(
                    StressPhase(name="a", fraction=0.5, duration_hours=2.0),
                    StressPhase(name="b", fraction=0.5),
                ),
                composition="residency",
            )

    def test_residency_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            Scenario(
                phases=(
                    StressPhase(name="a", fraction=0.5),
                    StressPhase(name="b", fraction=0.4),
                ),
                composition="residency",
            )

    def test_finite_durations_ordered_only(self):
        scenario = Scenario(
            phases=(
                StressPhase(name="a", fraction=0.5),
                StressPhase(name="b", fraction=0.5),
            ),
            composition="residency",
        )
        with pytest.raises(ConfigurationError, match="ordered"):
            scenario.finite_durations

    def test_fractions_residency_only(self):
        scenario = _ordered(
            StressPhase(name="a", duration_hours=10.0),
            StressPhase(name="z"),
        )
        with pytest.raises(ConfigurationError, match="residency"):
            scenario.fractions


class TestScenarioDocument:
    def test_round_trip_canonical(self):
        scenario = Scenario(
            phases=(
                StressPhase(
                    name="burnin",
                    duration_hours=168.0,
                    temperature_c=125.0,
                    vdd=1.3,
                ),
                StressPhase(name="field"),
            ),
            mechanisms=("obd", "nbti"),
        )
        doc = scenario.as_dict()
        assert Scenario.from_dict(doc) == scenario
        # Canonical form is stable under a second round trip.
        assert Scenario.from_dict(doc).as_dict() == doc

    def test_from_dict_defaults(self):
        scenario = Scenario.from_dict({"phases": [{"name": "field"}]})
        assert scenario.composition == "ordered"
        assert scenario.mechanisms == ("obd",)

    def test_from_dict_accepts_mechanism_string(self):
        scenario = Scenario.from_dict(
            {"phases": [{"name": "field"}], "mechanisms": "nbti"}
        )
        assert scenario.mechanisms == ("nbti",)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            Scenario.from_dict({"phases": [{"name": "p"}], "extra": 1})

    def test_from_dict_rejects_empty_phases(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            Scenario.from_dict({"phases": []})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            Scenario.from_dict([1, 2])
