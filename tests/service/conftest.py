"""Shared fixtures for the service tests."""

import threading

import pytest

from repro import obs
from repro.errors import ExecutionInterrupted
from repro.service import JobManager


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Counters are process-global; isolate each test's assertions."""
    obs.reset()
    yield
    obs.reset()


class GatedCompute:
    """A compute stub that blocks until released (and honours cancel).

    Lets tests hold a worker mid-job deterministically — no sleeps — to
    exercise coalescing, queue limits, cancellation and shutdown drain.
    """

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, request, cancel_check=None, checkpoint_path=None):
        with self._lock:
            self.calls += 1
        self.started.set()
        while not self.release.is_set():
            if cancel_check is not None and cancel_check():
                raise ExecutionInterrupted("cancelled by test")
            self.release.wait(0.01)
        return {"kind": request.kind, "seed": request.seed}


@pytest.fixture()
def gated():
    return GatedCompute()


@pytest.fixture()
def manager(gated):
    mgr = JobManager(workers=1, max_queue=2, compute=gated)
    mgr.start()
    yield mgr
    gated.release.set()
    mgr.shutdown(drain_timeout=5.0)
