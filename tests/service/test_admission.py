"""Token-bucket admission control with a deterministic clock."""

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert all(bucket.try_acquire()[0] for _ in range(3))
        ok, retry_after = bucket.try_acquire()
        assert not ok
        assert retry_after == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        clock.advance(0.5)
        assert bucket.try_acquire()[0]

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]


class TestAdmissionController:
    def test_rejects_beyond_burst_with_retry_hint(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=2, clock=clock)
        controller.admit("alice")
        controller.admit("alice")
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit("alice")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "rate_limited"
        assert excinfo.value.retry_after_s == pytest.approx(1.0)

    def test_clients_are_independent(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=1, clock=clock)
        controller.admit("alice")
        controller.admit("bob")
        with pytest.raises(AdmissionError):
            controller.admit("alice")

    def test_recovers_after_waiting(self):
        clock = FakeClock()
        controller = AdmissionController(rate=2.0, burst=1, clock=clock)
        controller.admit("alice")
        with pytest.raises(AdmissionError):
            controller.admit("alice")
        clock.advance(0.5)
        controller.admit("alice")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServiceError):
            AdmissionController(rate=0.0, burst=1)
        with pytest.raises(ServiceError):
            AdmissionController(rate=1.0, burst=0)
