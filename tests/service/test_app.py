"""ReliabilityService routing: endpoints, errors, payload identity."""

import json
import time

import pytest

from repro.cli import main
from repro.service import (
    AdmissionController,
    JobManager,
    ReliabilityService,
)


def _json(response):
    return json.loads(response.body.decode("utf-8"))


def _submit(service, doc, client="t"):
    return service.handle(
        "POST", "/v1/jobs", json.dumps(doc).encode("utf-8"), client
    )


def _wait_done(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = _json(service.handle("GET", f"/v1/jobs/{job_id}", b"", "t"))
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


@pytest.fixture()
def service(gated):
    manager = JobManager(workers=1, max_queue=2, compute=gated)
    manager.start()
    yield ReliabilityService(manager)
    gated.release.set()
    manager.shutdown(drain_timeout=5.0)


@pytest.fixture()
def live_service():
    """A service that really computes (tiny design, fast method)."""
    manager = JobManager(workers=1, max_queue=4)
    manager.start()
    yield ReliabilityService(manager)
    manager.shutdown(drain_timeout=10.0)


TINY = {"kind": "lifetime", "design": "C1", "grid": 6}


class TestRouting:
    def test_submit_returns_201_with_location(self, service, gated):
        response = _submit(service, TINY)
        assert response.status == 201
        doc = _json(response)
        assert doc["state"] in ("queued", "running")
        assert response.headers["Location"] == f"/v1/jobs/{doc['id']}"
        gated.release.set()

    def test_unknown_route_404(self, service):
        assert service.handle("GET", "/v1/nope", b"", "t").status == 404

    def test_wrong_method_405(self, service):
        assert service.handle("PUT", "/v1/jobs", b"", "t").status == 405

    def test_unknown_job_404(self, service):
        assert service.handle("GET", "/v1/jobs/zzz", b"", "t").status == 404

    def test_bad_json_body_400(self, service):
        response = service.handle("POST", "/v1/jobs", b"{nope", "t")
        assert response.status == 400
        assert _json(response)["error"]["code"] == "invalid_request"

    def test_invalid_request_400(self, service):
        response = _submit(service, {"kind": "bogus", "design": "C1"})
        assert response.status == 400

    def test_oversized_body_413(self, service):
        body = b"x" * 1_000_001
        assert service.handle("POST", "/v1/jobs", body, "t").status == 413

    def test_result_before_done_409(self, service, gated):
        doc = _json(_submit(service, TINY))
        response = service.handle(
            "GET", f"/v1/jobs/{doc['id']}/result", b"", "t"
        )
        assert response.status == 409
        assert _json(response)["error"]["code"] == "not_ready"
        gated.release.set()

    def test_job_list_includes_submissions(self, service, gated):
        gated.release.set()
        doc = _json(_submit(service, TINY))
        listing = _json(service.handle("GET", "/v1/jobs", b"", "t"))
        assert doc["id"] in [job["id"] for job in listing["jobs"]]

    def test_delete_cancels(self, service, gated):
        doc = _json(_submit(service, TINY))
        response = service.handle("DELETE", f"/v1/jobs/{doc['id']}", b"", "t")
        assert response.status == 202
        gated.release.set()
        final = _wait_done(service, doc["id"])
        assert final["state"] == "cancelled"


class TestHealth:
    def test_healthz(self, service):
        response = service.handle("GET", "/healthz", b"", "t")
        assert response.status == 200
        assert _json(response)["status"] == "ok"

    def test_readyz_reflects_accepting_state(self, service, gated):
        assert service.handle("GET", "/readyz", b"", "t").status == 200
        gated.release.set()
        service.manager.shutdown(drain_timeout=5.0)
        assert service.handle("GET", "/readyz", b"", "t").status == 503

    def test_metrics_exposition_format(self, service):
        response = service.handle("GET", "/metrics", b"", "t")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        text = response.body.decode("utf-8")
        assert "repro_service_jobs_queued" in text
        assert "# TYPE" in text


class TestAdmission:
    def test_burst_beyond_limit_gets_429_retry_after(self, gated):
        manager = JobManager(workers=1, max_queue=8, compute=gated)
        manager.start()
        service = ReliabilityService(
            manager, AdmissionController(rate=1.0, burst=2)
        )
        try:
            docs = [dict(TINY, seed=i) for i in range(3)]
            assert _submit(service, docs[0]).status == 201
            assert _submit(service, docs[1]).status == 201
            response = _submit(service, docs[2])
            assert response.status == 429
            assert int(response.headers["Retry-After"]) >= 1
            assert _json(response)["error"]["code"] == "rate_limited"
            # A different client is unaffected.
            assert _submit(service, dict(TINY, seed=9), "other").status == 201
        finally:
            gated.release.set()
            manager.shutdown(drain_timeout=5.0)

    def test_queue_overflow_maps_to_429(self, gated):
        manager = JobManager(workers=1, max_queue=1, compute=gated)
        manager.start()
        service = ReliabilityService(manager)
        try:
            _submit(service, dict(TINY, seed=0))
            assert gated.started.wait(5.0)
            _submit(service, dict(TINY, seed=1))
            response = _submit(service, dict(TINY, seed=2))
            assert response.status == 429
            assert "Retry-After" in response.headers
        finally:
            gated.release.set()
            manager.shutdown(drain_timeout=5.0)


class TestPayloadIdentity:
    """The acceptance bar: HTTP result bytes == CLI --json stdout."""

    @pytest.mark.parametrize(
        ("argv", "doc"),
        [
            (
                ["lifetime", "--design", "C1", "--grid", "6", "--json"],
                {"kind": "lifetime", "design": "C1", "grid": 6},
            ),
            (
                [
                    "lifetime",
                    "--design",
                    "C1",
                    "--grid",
                    "6",
                    "--method",
                    "st_fast",
                    "guard",
                    "--ppm",
                    "25",
                    "--json",
                ],
                {
                    "kind": "lifetime",
                    "design": "C1",
                    "grid": 6,
                    "methods": ["st_fast", "guard"],
                    "ppm": 25,
                },
            ),
            (
                [
                    "curve",
                    "--design",
                    "C1",
                    "--grid",
                    "6",
                    "--t-min",
                    "1e4",
                    "--t-max",
                    "1e6",
                    "--points",
                    "5",
                    "--json",
                ],
                {
                    "kind": "curve",
                    "design": "C1",
                    "grid": 6,
                    "t_min": 1e4,
                    "t_max": 1e6,
                    "points": 5,
                },
            ),
        ],
    )
    def test_http_result_matches_cli_bytes(self, live_service, capsys, argv, doc):
        assert main(argv) == 0
        cli_out = capsys.readouterr().out
        submitted = _json(_submit(live_service, doc))
        _wait_done(live_service, submitted["id"])
        response = live_service.handle(
            "GET", f"/v1/jobs/{submitted['id']}/result", b"", "t"
        )
        assert response.status == 200
        assert response.body.decode("utf-8") == cli_out

    def test_report_payload_matches_cli(self, live_service, capsys):
        assert main(["report", "--design", "C1", "--grid", "6", "--json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        submitted = _json(
            _submit(live_service, {"kind": "report", "design": "C1", "grid": 6})
        )
        _wait_done(live_service, submitted["id"])
        http_doc = _json(
            live_service.handle(
                "GET", f"/v1/jobs/{submitted['id']}/result", b"", "t"
            )
        )
        # The report embeds wall-clock stage timings, so compare the
        # stable structure rather than the raw bytes.
        assert sorted(http_doc) == sorted(cli_doc)
        assert http_doc["execution"] == cli_doc["execution"]
        assert http_doc["report"].splitlines()[0] == cli_doc["report"].splitlines()[0]
