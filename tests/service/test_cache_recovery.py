"""Cache-corruption recovery through the full service path.

A corrupted result-cache entry must be detected (``exec.cache.corrupt``),
treated as a miss, recomputed, and the job must still finish with a 200
result — the corruption is an operational event, never a client error.
"""

import json
import time

import pytest

from repro import obs
from repro.exec.cache import ResultCache
from repro.service import JobManager, ReliabilityService

TINY = {"kind": "lifetime", "design": "C1", "grid": 6}


def _json(response):
    return json.loads(response.body.decode("utf-8"))


def _submit(service, doc):
    return service.handle(
        "POST", "/v1/jobs", json.dumps(doc).encode("utf-8"), "t"
    )


def _wait_done(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = _json(service.handle("GET", f"/v1/jobs/{job_id}", b"", "t"))
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.02)
    raise AssertionError("job did not finish")


@pytest.fixture()
def cached_service(tmp_path):
    manager = JobManager(
        workers=1, max_queue=4, cache=ResultCache(tmp_path / "cache")
    )
    manager.start()
    yield ReliabilityService(manager), tmp_path / "cache"
    manager.shutdown(drain_timeout=10.0)


class TestCorruptionRecovery:
    def test_corrupt_entry_recomputes_and_returns_200(self, cached_service):
        service, cache_root = cached_service

        # First run populates the cache.
        first = _json(_submit(service, TINY))
        assert _wait_done(service, first["id"])["state"] == "done"
        first_body = service.handle(
            "GET", f"/v1/jobs/{first['id']}/result", b"", "t"
        ).body

        entries = list(cache_root.rglob("*.npz"))
        assert len(entries) == 1
        entries[0].write_bytes(b"garbage, not a zip archive")

        with obs.enabled():
            second = _json(_submit(service, TINY))
            # The corrupt entry must not short-circuit to a cached job.
            assert not second["cached"]
            assert _wait_done(service, second["id"])["state"] == "done"
            assert obs.get_counter("exec.cache.corrupt") == 1.0

        response = service.handle(
            "GET", f"/v1/jobs/{second['id']}/result", b"", "t"
        )
        assert response.status == 200
        assert response.body == first_body

    def test_intact_entry_serves_cached_job(self, cached_service):
        service, _cache_root = cached_service
        first = _json(_submit(service, TINY))
        _wait_done(service, first["id"])
        with obs.enabled():
            second = _json(_submit(service, TINY))
            assert second["cached"]
            assert second["state"] == "done"
            assert obs.get_counter("exec.cache.hit") == 1.0
            assert obs.get_counter("exec.cache.corrupt") == 0.0
