"""End-to-end HTTP tests: real sockets via ThreadingHTTPServer."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import JobManager, ReliabilityService, make_server

TINY = {"kind": "lifetime", "design": "C1", "grid": 6}


@pytest.fixture()
def base_url():
    manager = JobManager(workers=1, max_queue=4)
    manager.start()
    server = make_server("127.0.0.1", 0, ReliabilityService(manager))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    thread.join(5.0)
    manager.shutdown(drain_timeout=10.0)
    server.server_close()


def _call(method, url, body=None, headers=None):
    request = urllib.request.Request(
        url, data=body, method=method, headers=dict(headers or {})
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


def _submit(base_url, doc):
    return _call(
        "POST",
        f"{base_url}/v1/jobs",
        json.dumps(doc).encode("utf-8"),
        {"Content-Type": "application/json"},
    )


def _wait_done(base_url, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body, _ = _call("GET", f"{base_url}/v1/jobs/{job_id}")
        state = json.loads(body)["state"]
        if state in ("done", "failed", "cancelled"):
            return state
        time.sleep(0.05)
    raise AssertionError("job did not finish")


class TestHttpEndToEnd:
    def test_submit_poll_result(self, base_url):
        status, body, headers = _submit(base_url, TINY)
        assert status == 201
        doc = json.loads(body)
        assert headers["Location"] == f"/v1/jobs/{doc['id']}"
        assert _wait_done(base_url, doc["id"]) == "done"
        status, body, _ = _call(
            "GET", f"{base_url}/v1/jobs/{doc['id']}/result"
        )
        assert status == 200
        result = json.loads(body)
        assert result["schema_version"] == 1
        assert "st_fast" in result["lifetime_hours"]

    def test_health_and_metrics(self, base_url):
        status, body, _ = _call("GET", f"{base_url}/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, body, _ = _call("GET", f"{base_url}/metrics")
        assert status == 200
        assert b"repro_service_jobs_queued" in body

    def test_client_id_header_keys_admission(self, base_url):
        status, body, _ = _submit(base_url, dict(TINY, seed=5))
        assert status == 201

    def test_delete_over_http(self, base_url):
        status, body, _ = _submit(base_url, dict(TINY, seed=6))
        doc = json.loads(body)
        status, _, _ = _call("DELETE", f"{base_url}/v1/jobs/{doc['id']}")
        assert status == 202

    def test_404_has_error_envelope(self, base_url):
        status, body, _ = _call("GET", f"{base_url}/v1/jobs/zzz")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"
