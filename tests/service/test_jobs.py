"""JobManager: queueing, coalescing, cancellation, drain, caching."""

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.errors import AdmissionError, ServiceError
from repro.exec.cache import ResultCache
from repro.service import JobManager, JobRequest, JobState


def _request(seed=0, **overrides):
    doc = {"kind": "lifetime", "design": "C1", "grid": 6, "seed": seed}
    doc.update(overrides)
    return JobRequest.from_dict(doc)


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestQueueing:
    def test_job_runs_to_done(self, manager, gated):
        job, created = manager.submit(_request(), "t")
        assert created
        gated.release.set()
        assert _wait_for(lambda: job.state == JobState.DONE)
        assert job.result == {"kind": "lifetime", "seed": 0}

    def test_queue_full_raises_admission_error(self, manager, gated):
        manager.submit(_request(seed=0), "t")
        assert gated.started.wait(5.0)
        # Worker busy; fill the two queue slots, then overflow.
        manager.submit(_request(seed=1), "t")
        manager.submit(_request(seed=2), "t")
        with pytest.raises(AdmissionError) as excinfo:
            manager.submit(_request(seed=3), "t")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s > 0

    def test_unknown_job_id_is_404(self, manager):
        with pytest.raises(ServiceError) as excinfo:
            manager.get("nope")
        assert excinfo.value.status == 404


class TestCoalescing:
    def test_identical_submissions_share_one_run(self, manager, gated):
        first, created_first = manager.submit(_request(), "alice")
        assert gated.started.wait(5.0)
        second, created_second = manager.submit(_request(), "bob")
        assert created_first and not created_second
        assert second is first
        gated.release.set()
        assert _wait_for(lambda: first.state == JobState.DONE)
        assert gated.calls == 1

    def test_different_requests_do_not_coalesce(self, manager, gated):
        first, _ = manager.submit(_request(seed=0), "t")
        second, created = manager.submit(_request(seed=1), "t")
        assert created
        assert second is not first


class TestCancellation:
    def test_cancel_queued_job(self, manager, gated):
        manager.submit(_request(seed=0), "t")
        assert gated.started.wait(5.0)
        queued, _ = manager.submit(_request(seed=1), "t")
        cancelled = manager.cancel(queued.id)
        assert cancelled.state == JobState.CANCELLED
        gated.release.set()

    def test_cancel_running_job(self, manager, gated):
        job, _ = manager.submit(_request(), "t")
        assert gated.started.wait(5.0)
        manager.cancel(job.id)
        assert _wait_for(lambda: job.state == JobState.CANCELLED)
        assert job.error["code"] == "cancelled"

    def test_job_timeout_reports_failure(self, gated):
        manager = JobManager(
            workers=1, max_queue=2, compute=gated, job_timeout_s=0.05
        )
        manager.start()
        try:
            job, _ = manager.submit(_request(), "t")
            assert _wait_for(lambda: job.state == JobState.FAILED)
            assert job.error["code"] == "timeout"
        finally:
            gated.release.set()
            manager.shutdown(drain_timeout=5.0)


class TestLifecycleRaces:
    def test_concurrent_start_spawns_exactly_one_pool(self, gated):
        # Regression: start() used to check self._threads outside the
        # lock, so two racing callers could each spawn a full worker pool.
        manager = JobManager(workers=2, max_queue=4, compute=gated)
        callers = 8
        barrier = threading.Barrier(callers)

        def racing_start():
            barrier.wait(5.0)
            manager.start()

        threads = [
            threading.Thread(target=racing_start) for _ in range(callers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        try:
            assert len(manager._threads) == manager.workers
            assert all(worker.is_alive() for worker in manager._threads)
        finally:
            gated.release.set()
            assert manager.shutdown(drain_timeout=5.0)

    def test_start_after_shutdown_spawns_fresh_pool(self, gated):
        manager = JobManager(workers=1, max_queue=2, compute=gated)
        manager.start()
        gated.release.set()
        assert manager.shutdown(drain_timeout=5.0)
        assert manager._threads == []
        manager.start()
        try:
            assert len(manager._threads) == 1
        finally:
            manager.shutdown(drain_timeout=5.0)


class TestShutdown:
    def test_clean_drain(self, gated):
        manager = JobManager(workers=1, max_queue=2, compute=gated)
        manager.start()
        job, _ = manager.submit(_request(), "t")
        gated.release.set()
        assert manager.shutdown(drain_timeout=5.0)
        assert job.state == JobState.DONE
        assert not manager.accepting

    def test_submissions_rejected_after_shutdown(self, gated):
        manager = JobManager(workers=1, max_queue=2, compute=gated)
        manager.start()
        gated.release.set()
        manager.shutdown(drain_timeout=5.0)
        with pytest.raises(ServiceError) as excinfo:
            manager.submit(_request(), "t")
        assert excinfo.value.status == 503

    def test_expired_drain_cancels_running_job(self, gated):
        manager = JobManager(workers=1, max_queue=2, compute=gated)
        manager.start()
        job, _ = manager.submit(_request(), "t")
        assert gated.started.wait(5.0)
        # Never released: the drain must time out and cancel the job.
        assert not manager.shutdown(drain_timeout=0.1)
        assert job.state == JobState.CANCELLED


class TestResultCache:
    def test_done_job_populates_cache_and_serves_repeat(self, tmp_path, gated):
        cache = ResultCache(tmp_path / "cache")
        manager = JobManager(workers=1, max_queue=2, cache=cache, compute=gated)
        manager.start()
        try:
            gated.release.set()
            first, _ = manager.submit(_request(), "t")
            assert _wait_for(lambda: first.state == JobState.DONE)
            second, created = manager.submit(_request(), "t")
            assert not created
            assert second.cached
            assert second.state == JobState.DONE
            assert second.result == first.result
            assert gated.calls == 1
        finally:
            manager.shutdown(drain_timeout=5.0)

    def test_corrupt_cache_entry_recomputes(self, tmp_path, gated):
        cache = ResultCache(tmp_path / "cache")
        request = _request()
        cache.put(
            request.key,
            {"payload_json": np.array("{not json")},
            meta={"kind": request.kind},
        )
        manager = JobManager(workers=1, max_queue=2, cache=cache, compute=gated)
        manager.start()
        try:
            gated.release.set()
            with obs.enabled():
                job, created = manager.submit(request, "t")
                assert created
                assert _wait_for(lambda: job.state == JobState.DONE)
                assert obs.get_counter("exec.cache.corrupt") == 1.0
            assert gated.calls == 1
        finally:
            manager.shutdown(drain_timeout=5.0)


class TestProgress:
    def test_progress_counts_checkpoint_shards(self, tmp_path, gated):
        request = _request(methods=["mc"], mc_chips=200)
        manager = JobManager(
            workers=1,
            max_queue=2,
            checkpoint_dir=tmp_path / "ckpt",
            compute=gated,
        )
        job = manager._new_job(request, request.key, "t", time.time())
        assert job.checkpoint_path is not None
        job.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        # Emulate the MC engine's checkpoint layout mid-run: two distinct
        # shard indices, one with two fields.
        np.savez(
            job.checkpoint_path,
            __checkpoint__=np.array(json.dumps({"kind": "mc"})),
            s0__total=np.zeros(2),
            s0__n=np.asarray(1),
            s2__total=np.zeros(2),
        )
        progress = manager.progress(job)
        assert progress == {"shards_done": 2, "shards_total": 4}

    def test_progress_none_without_checkpoint(self, manager):
        job, _ = manager.submit(_request(), "t")
        assert manager.progress(job) is None
