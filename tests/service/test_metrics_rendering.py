"""Prometheus exposition of the obs registry: format lint, escaping, health."""

from __future__ import annotations

import math
import re

import numpy as np
import pytest

from repro import obs
from repro.exec.cache import ResultCache
from repro.service import JobManager
from repro.service.payloads import (
    _escape_label_value,
    _format_value,
    render_metrics_text,
)
from repro.thermal import factor_cache

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^({_NAME})(\{{[^}}]*\}})? (NaN|[+-]Inf|[-+0-9.eE]+)$"
)
_HELP = re.compile(rf"^# HELP ({_NAME}) .+$")
_TYPE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge|histogram)$")


def _base_family(name: str) -> str:
    for suffix in ("_bucket", "_total", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint_exposition(text: str) -> dict[str, str]:
    """A small Prometheus text-format linter; returns {family: type}.

    Checks the invariants promtool's lint enforces: every sample parses,
    every family has HELP and TYPE lines *before* its samples, counter
    families end in ``_total``, and histogram bucket series are cumulative
    with a ``+Inf`` bucket equal to ``_count``.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict[str, str] = {}
    helped: set[str] = set()
    buckets: dict[str, list[tuple[str, float]]] = {}
    counts: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            match = _HELP.match(line)
            assert match, f"bad HELP line: {line!r}"
            helped.add(match.group(1))
            continue
        if line.startswith("# TYPE "):
            match = _TYPE.match(line)
            assert match, f"bad TYPE line: {line!r}"
            families[match.group(1)] = match.group(2)
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample: {line!r}"
        name, labels, value = match.groups()
        # Counters declare their TYPE under the full `_total` name
        # (classic text format); histograms declare the base family.
        family = name if name in families else _base_family(name)
        if families.get(family) == "histogram":
            if name.endswith("_bucket"):
                assert labels and 'le="' in labels, f"bucket sans le: {line!r}"
                le = labels.split('le="', 1)[1].split('"', 1)[0]
                buckets.setdefault(family, []).append((le, float(value)))
            elif name.endswith("_count"):
                counts[family] = float(value)
        else:
            assert family in families, f"sample before TYPE: {line!r}"
            if families[family] == "counter":
                assert name.endswith("_total"), f"counter sans _total: {name}"
    for family, series in buckets.items():
        values = [v for _, v in series]
        assert values == sorted(values), f"{family} buckets not cumulative"
        assert series[-1][0] == "+Inf", f"{family} missing +Inf bucket"
        assert series[-1][1] == counts[family], (
            f"{family} +Inf bucket != _count"
        )
    for family, kind in families.items():
        assert family in helped, f"family {family} has TYPE but no HELP"
    return families


@pytest.fixture(autouse=True)
def _fresh_factor_cache():
    factor_cache.clear_factor_cache(reset_stats=True)
    yield
    factor_cache.clear_factor_cache(reset_stats=True)
    # Tests here obs.enable() freely; don't leak the switch to other modules.
    obs.disable()


class TestExpositionFormat:
    def test_full_rendering_passes_lint(self):
        obs.enable()
        obs.inc("service.requests", 3)
        obs.gauge("service.jobs.running", 1)
        obs.observe("service.latency.jobs_submit", 0.004)
        obs.observe("service.latency.jobs_submit", 0.25)
        obs.observe("exec.shard.seconds", 1.5)
        families = lint_exposition(render_metrics_text())
        assert families["repro_service_requests_total"] == "counter"
        assert families["repro_service_jobs_running"] == "gauge"
        assert families["repro_service_latency_jobs_submit"] == "histogram"
        assert families["repro_exec_shard_seconds"] == "histogram"

    def test_histogram_series_shape(self):
        obs.enable()
        obs.observe("lat", 0.5, buckets=(1.0, 10.0))
        obs.observe("lat", 5.0, buckets=(1.0, 10.0))
        obs.observe("lat", 50.0, buckets=(1.0, 10.0))
        text = render_metrics_text()
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="10"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 55.5" in text
        assert "repro_lat_count 3" in text
        lint_exposition(text)

    def test_every_family_has_help_and_type(self):
        obs.enable()
        obs.inc("a.counter")
        obs.gauge("b.gauge", 2.0)
        obs.observe("c.hist", 0.1)
        text = render_metrics_text()
        for family in ("repro_a_counter_total", "repro_b_gauge", "repro_c_hist"):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} " in text

    def test_non_finite_gauge_values_render(self):
        obs.enable()
        obs.gauge("weird.nan", float("nan"))
        obs.gauge("weird.posinf", float("inf"))
        obs.gauge("weird.neginf", float("-inf"))
        text = render_metrics_text()
        assert "repro_weird_nan NaN" in text
        assert "repro_weird_posinf +Inf" in text
        assert "repro_weird_neginf -Inf" in text
        lint_exposition(text)

    def test_format_value_forms(self):
        assert _format_value(math.nan) == "NaN"
        assert _format_value(math.inf) == "+Inf"
        assert _format_value(-math.inf) == "-Inf"
        assert _format_value(0.25) == "0.25"

    def test_label_value_escaping(self):
        assert _escape_label_value('a"b') == r"a\"b"
        assert _escape_label_value("a\\b") == r"a\\b"
        assert _escape_label_value("a\nb") == r"a\nb"

    def test_empty_registry_renders_trailing_newline(self):
        text = render_metrics_text()
        assert text.endswith("\n")


class TestCacheHealthGauges:
    def test_exec_cache_hit_ratio_from_counters(self):
        obs.enable()
        obs.inc("exec.cache.hit", 3)
        obs.inc("exec.cache.miss", 1)
        text = render_metrics_text()
        assert "repro_exec_cache_hit_ratio 0.75" in text

    def test_hit_ratio_absent_without_lookups(self):
        obs.enable()
        text = render_metrics_text()
        assert "repro_exec_cache_hit_ratio" not in text

    def test_factor_cache_entries_and_ratio(self):
        from scipy.sparse import identity

        from repro.chip.geometry import GridSpec
        from repro.thermal.grid import PackageModel

        obs.enable()
        grid = GridSpec(nx=2, ny=2, width=2.0, height=2.0)
        package = PackageModel()

        def build():
            return identity(4, format="csr")

        factor_cache.cached_factorization(grid, package, build)
        factor_cache.cached_factorization(grid, package, build)  # hit
        text = render_metrics_text()
        assert "repro_thermal_factor_cache_entries 1" in text
        assert "repro_thermal_factor_cache_hit_ratio 0.5" in text
        lint_exposition(text)

    def test_disk_entry_count_from_manager_cache(self, tmp_path, gated):
        obs.enable()
        cache = ResultCache(tmp_path / "cache")
        cache.put("deadbeef" * 8, {"x": np.arange(3)})
        manager = JobManager(workers=1, max_queue=2, compute=gated, cache=cache)
        try:
            text = render_metrics_text(manager)
            assert "repro_exec_cache_disk_entries 1" in text
            lint_exposition(text)
        finally:
            gated.release.set()

    def test_per_tier_hit_ratios_from_tier_counters(self):
        obs.enable()
        obs.inc("exec.cache.local.hit", 3)
        obs.inc("exec.cache.local.miss", 1)
        obs.inc("exec.cache.shared.hit", 9)
        obs.inc("exec.cache.shared.miss", 1)
        text = render_metrics_text()
        assert "repro_exec_cache_local_hit_ratio 0.75" in text
        assert "repro_exec_cache_shared_hit_ratio 0.9" in text
        lint_exposition(text)

    def test_tier_ratio_absent_without_tier_lookups(self):
        obs.enable()
        obs.inc("exec.cache.local.hit", 2)
        text = render_metrics_text()
        assert "repro_exec_cache_local_hit_ratio 1" in text
        assert "repro_exec_cache_shared_hit_ratio" not in text

    def test_tier_disk_entry_gauge_from_manager_cache(self, tmp_path, gated):
        obs.enable()
        cache = ResultCache(tmp_path / "shared", tier="shared")
        cache.put("deadbeef" * 8, {"x": np.arange(3)})
        manager = JobManager(workers=1, max_queue=2, compute=gated, cache=cache)
        try:
            text = render_metrics_text(manager)
            assert "repro_exec_cache_shared_disk_entries 1" in text
            lint_exposition(text)
        finally:
            gated.release.set()
