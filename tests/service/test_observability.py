"""End-to-end observability: merged traces, trace endpoint, flight dumps."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.exec import ProcessBackend, SerialBackend, ThreadBackend
from repro.exec.runner import run_sharded
from repro.exec.sharding import plan_shards
from repro.service import JobManager, ReliabilityService


def _json(response):
    return json.loads(response.body.decode("utf-8"))


def _submit(service, doc, client="t", trace_id=None):
    return service.handle(
        "POST",
        "/v1/jobs",
        json.dumps(doc).encode("utf-8"),
        client,
        trace_id=trace_id,
    )


def _wait_done(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = _json(service.handle("GET", f"/v1/jobs/{job_id}", b"", "t"))
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


@pytest.fixture()
def traced_obs():
    """Tracing on for the test, restored after (metrics reset by conftest)."""
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    obs.disable()


def _shard_task(shard):
    """Module-level so the process backend can pickle it.

    Opens a span of its own to prove worker-side nesting survives the
    process boundary.
    """
    with obs.span("mc.chunk", start=shard.start):
        return {"acc": np.full(1, float(shard.index))}


def _process_compute(request, cancel_check=None, checkpoint_path=None):
    """A JobManager compute that fans out over a real process pool."""
    backend = ProcessBackend(2)
    try:
        shards = plan_shards(8, root=0, shard_size=4)
        done = run_sharded(backend, _shard_task, shards)
    finally:
        backend.close()
    return {"kind": request.kind, "shards": len(done)}


TINY = {"kind": "lifetime", "design": "C1", "grid": 6}


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


class TestRunShardedTraceMerge:
    """Satellite: worker shard spans graft into the submitting tree."""

    @pytest.mark.parametrize(
        "make_backend",
        [SerialBackend, lambda: ThreadBackend(2), lambda: ProcessBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_shard_spans_parent_onto_submitting_span(self, make_backend):
        backend = make_backend()
        shards = plan_shards(8, root=0, shard_size=4)
        with obs.enabled():
            with obs.span("exec.run") as parent:
                run_sharded(backend, _shard_task, shards)
            if hasattr(backend, "close"):
                backend.close()
            (root,) = obs.trace_snapshot()
        shard_spans = [
            n for n in _walk(root) if n["name"] == "exec.shard"
        ]
        assert len(shard_spans) == len(shards)
        for node in shard_spans:
            # Grafted under the live tree AND stamped with the submitting
            # span's id, so the parentage survives serialization.
            assert node["attrs"]["parent_span_id"] == parent.span_id
            children = [c["name"] for c in node.get("children", ())]
            assert children == ["mc.chunk"]
        assert obs.get_counter("exec.shards") == len(shards)

    def test_disabled_tracing_ships_no_spans(self):
        shards = plan_shards(8, root=0, shard_size=4)
        run_sharded(SerialBackend(), _shard_task, shards)
        assert obs.trace_snapshot() == []


class TestTraceEndpoint:
    def test_merged_trace_served_for_process_backend_job(self, traced_obs):
        manager = JobManager(workers=1, max_queue=4, compute=_process_compute)
        manager.start()
        service = ReliabilityService(manager)
        try:
            doc = _json(_submit(service, TINY, trace_id="req-trace-1"))
            assert doc["trace_id"] == "req-trace-1"
            assert doc["links"]["trace"] == f"/v1/jobs/{doc['id']}/trace"
            final = _wait_done(service, doc["id"])
            assert final["state"] == "done"
            response = service.handle(
                "GET", f"/v1/jobs/{doc['id']}/trace", b"", "t"
            )
            assert response.status == 200
            envelope = _json(response)
            assert envelope["trace_id"] == "req-trace-1"
            tree = envelope["trace"]
            assert tree["name"] == "service.job"
            assert tree["attrs"]["trace_id"] == "req-trace-1"
            shard_spans = [
                n for n in _walk(tree) if n["name"] == "exec.shard"
            ]
            assert len(shard_spans) == 2  # 8 items / shard_size 4
            for node in shard_spans:
                assert node["attrs"]["trace_id"] == "req-trace-1"
                assert [c["name"] for c in node["children"]] == ["mc.chunk"]
            # One coherent tree: every shard span sits under the job root.
            assert json.loads(json.dumps(tree)) == tree
        finally:
            manager.shutdown(drain_timeout=10.0)

    def test_trace_not_ready_while_pending(self, manager, gated):
        service = ReliabilityService(manager)
        doc = _json(_submit(service, TINY))
        response = service.handle(
            "GET", f"/v1/jobs/{doc['id']}/trace", b"", "t"
        )
        assert response.status == 409
        assert _json(response)["error"]["code"] == "not_ready"
        gated.release.set()

    def test_trace_404_when_tracing_was_off(self, manager, gated):
        service = ReliabilityService(manager)
        gated.release.set()
        doc = _json(_submit(service, TINY))
        _wait_done(service, doc["id"])
        response = service.handle(
            "GET", f"/v1/jobs/{doc['id']}/trace", b"", "t"
        )
        assert response.status == 404
        assert _json(response)["error"]["code"] == "not_found"


class TestFlightEndpoint:
    def test_cancelled_job_dump_contains_cancellation(self, manager, gated):
        service = ReliabilityService(manager)
        doc = _json(_submit(service, TINY))
        assert gated.started.wait(5.0)
        assert service.handle(
            "DELETE", f"/v1/jobs/{doc['id']}", b"", "t"
        ).status == 202
        final = _wait_done(service, doc["id"])
        assert final["state"] == "cancelled"
        envelope = _json(
            service.handle("GET", "/v1/debug/flight", b"", "t")
        )
        assert envelope["count"] >= 1
        dump = next(
            r for r in envelope["records"] if r["job_id"] == doc["id"]
        )
        events = [e["event"] for e in dump["events"]]
        assert "submit" in events
        assert "cancel.requested" in events
        assert events[-1] == "finish"
        assert dump["events"][-1]["state"] == "cancelled"
        assert dump["reason"] == "cancelled"
        # A metric snapshot rides along with every dump (empty here —
        # the global metrics switch is off in this test).
        assert set(dump["metrics"]) == {"counters", "gauges", "histograms"}

    def test_healthy_job_leaves_no_flight_record(self, manager, gated):
        service = ReliabilityService(manager)
        gated.release.set()
        doc = _json(_submit(service, TINY))
        _wait_done(service, doc["id"])
        envelope = _json(
            service.handle("GET", "/v1/debug/flight", b"", "t")
        )
        assert envelope["records"] == []
        assert envelope["active"] == 0

    def test_queue_wait_and_run_histograms_recorded(self, manager, gated):
        service = ReliabilityService(manager)
        gated.release.set()
        doc = _json(_submit(service, TINY))
        _wait_done(service, doc["id"])
        # Histograms only collect while obs metrics are enabled; the
        # latency split still flows through observe() without error when
        # disabled — enable and run a second distinct job to assert.
        obs.enable()
        try:
            doc2 = _json(_submit(service, dict(TINY, seed=2)))
            _wait_done(service, doc2["id"])
            wait_hist = obs.get_histogram("service.job.queue_wait_seconds")
            run_hist = obs.get_histogram("service.job.run_seconds")
            assert wait_hist is not None and wait_hist.count >= 1
            assert run_hist is not None and run_hist.count >= 1
        finally:
            obs.disable()
