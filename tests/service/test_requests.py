"""JobRequest validation, fingerprinting and analyzer construction."""

import pytest

from repro.errors import ServiceError
from repro.service import JobRequest


def _doc(**overrides):
    doc = {"kind": "lifetime", "design": "C1"}
    doc.update(overrides)
    return doc


class TestValidation:
    def test_minimal_lifetime_request(self):
        request = JobRequest.from_dict(_doc())
        assert request.kind == "lifetime"
        assert request.design == "C1"
        assert request.methods == ("st_fast",)

    def test_round_trips_through_as_dict(self):
        request = JobRequest.from_dict(_doc(grid=10, seed=7))
        assert JobRequest.from_dict(request.as_dict()) == request

    @pytest.mark.parametrize(
        "doc",
        [
            "not a dict",
            {},
            {"kind": "nope", "design": "C1"},
            {"kind": "lifetime"},
            {"kind": "lifetime", "design": "C1", "setup": {}},
            {"kind": "lifetime", "design": "Z9"},
            {"kind": "lifetime", "design": "C1", "methods": []},
            {"kind": "lifetime", "design": "C1", "methods": ["bogus"]},
            {"kind": "lifetime", "design": "C1", "grid": 1},
            {"kind": "lifetime", "design": "C1", "grid": "big"},
            {"kind": "lifetime", "design": "C1", "ppm": -1.0},
            {"kind": "lifetime", "design": "C1", "mc_chips": 10**9},
            {"kind": "curve", "design": "C1"},
            {"kind": "curve", "design": "C1", "t_min": 5.0, "t_max": 1.0},
            {
                "kind": "curve",
                "design": "C1",
                "t_min": 1.0,
                "t_max": 5.0,
                "methods": ["mc"],
            },
            {"kind": "lifetime", "design": "C1", "surprise": 1},
        ],
    )
    def test_invalid_documents_rejected(self, doc):
        with pytest.raises(ServiceError):
            JobRequest.from_dict(doc)

    def test_invalid_setup_rejected_at_submit(self):
        with pytest.raises(ServiceError, match="setup"):
            JobRequest.from_dict({"kind": "report", "setup": {"bogus": 1}})

    def test_method_alias_accepted(self):
        request = JobRequest.from_dict(_doc(method="st_mc"))
        assert request.methods == ("st_mc",)


class TestFingerprint:
    def test_identical_requests_share_a_key(self):
        assert (
            JobRequest.from_dict(_doc()).key == JobRequest.from_dict(_doc()).key
        )

    def test_any_knob_changes_the_key(self):
        base = JobRequest.from_dict(_doc()).key
        assert JobRequest.from_dict(_doc(seed=1)).key != base
        assert JobRequest.from_dict(_doc(grid=10)).key != base
        assert JobRequest.from_dict(_doc(kind="report")).key != base


class TestAnalyzer:
    def test_build_analyzer_matches_cli_semantics(self):
        request = JobRequest.from_dict(_doc(grid=6, rho=0.7, vdd=1.1))
        analyzer = request.build_analyzer()
        assert analyzer.config.grid_size == 6
        assert analyzer.config.rho_dist == 0.7
        assert analyzer.config.vdd == 1.1

    def test_uses_mc_flag(self):
        assert JobRequest.from_dict(_doc(methods=["mc"])).uses_mc
        assert not JobRequest.from_dict(_doc()).uses_mc
        assert not JobRequest.from_dict(
            {"kind": "report", "design": "C1"}
        ).uses_mc
