"""Scenario jobs through the service request layer."""

import pytest

from repro.errors import ServiceError
from repro.payloads import dump_payload, scenario_payload
from repro.scenario import Scenario
from repro.service import JobRequest
from repro.service.requests import run_job

SCHEDULE = {
    "phases": [
        {
            "name": "burnin",
            "duration_hours": 500.0,
            "temperature_c": 110.0,
        },
        {"name": "field"},
    ],
    "mechanisms": ["obd", "nbti"],
}


def _doc(**overrides):
    doc = {
        "kind": "scenario",
        "design": "C1",
        "grid": 6,
        "scenario": SCHEDULE,
    }
    doc.update(overrides)
    return doc


class TestValidation:
    def test_minimal_scenario_request(self):
        request = JobRequest.from_dict(_doc())
        assert request.kind == "scenario"
        assert request.methods == ("st_fast",)
        assert request.scenario is not None

    def test_round_trips_through_as_dict(self):
        request = JobRequest.from_dict(_doc())
        assert JobRequest.from_dict(request.as_dict()) == request

    def test_scenario_document_required(self):
        with pytest.raises(ServiceError, match="schedule document"):
            JobRequest.from_dict({"kind": "scenario", "design": "C1"})

    def test_st_fast_only(self):
        with pytest.raises(ServiceError, match="st_fast"):
            JobRequest.from_dict(_doc(methods=["st_mc"]))

    def test_invalid_schedule_rejected_at_submit(self):
        bad = {"phases": [{"name": "p", "watts": 3}]}
        with pytest.raises(ServiceError, match="invalid 'scenario'"):
            JobRequest.from_dict(_doc(scenario=bad))

    def test_scenario_key_rejected_on_other_kinds(self):
        with pytest.raises(ServiceError, match="scenario jobs only"):
            JobRequest.from_dict(
                {"kind": "lifetime", "design": "C1", "scenario": SCHEDULE}
            )


class TestFingerprint:
    def test_schedule_is_canonicalised(self):
        # Equivalent spellings (defaults elided vs explicit, mechanisms
        # as string vs singleton list) must coalesce to one cache key.
        elided = {"phases": [{"name": "field"}], "mechanisms": "obd"}
        explicit = Scenario.from_dict(elided).as_dict()
        assert (
            JobRequest.from_dict(_doc(scenario=elided)).key
            == JobRequest.from_dict(_doc(scenario=explicit)).key
        )

    def test_schedule_changes_the_key(self):
        base = JobRequest.from_dict(_doc()).key
        hotter = {
            **SCHEDULE,
            "phases": [
                {**SCHEDULE["phases"][0], "temperature_c": 120.0},
                SCHEDULE["phases"][1],
            ],
        }
        fewer = {**SCHEDULE, "mechanisms": ["obd"]}
        assert JobRequest.from_dict(_doc(scenario=hotter)).key != base
        assert JobRequest.from_dict(_doc(scenario=fewer)).key != base

    def test_kind_changes_the_key(self):
        scenario_key = JobRequest.from_dict(_doc()).key
        lifetime_key = JobRequest.from_dict(
            {"kind": "lifetime", "design": "C1", "grid": 6}
        ).key
        assert scenario_key != lifetime_key


class TestRunJob:
    def test_matches_direct_payload_byte_for_byte(self):
        request = JobRequest.from_dict(_doc(ppm=100.0))
        served = run_job(request)
        direct = scenario_payload(
            request.build_analyzer(),
            Scenario.from_dict(SCHEDULE),
            100.0,
        )
        assert dump_payload(served) == dump_payload(direct)
