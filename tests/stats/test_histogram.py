"""Unit tests for histogram diagnostics (Fig. 4 machinery)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.histogram import empirical_cdf, gaussian_fit_r2, histogram_pdf


class TestGaussianFit:
    def test_gaussian_sample_has_high_r2(self, rng):
        samples = rng.normal(2.2, 0.015, size=20000)
        result = gaussian_fit_r2(samples, bins=40)
        assert result.r_square > 0.98
        assert result.mean == pytest.approx(2.2, abs=1e-3)
        assert result.sigma == pytest.approx(0.015, rel=0.05)

    def test_uniform_sample_has_poor_r2(self, rng):
        samples = rng.uniform(0.0, 1.0, size=20000)
        result = gaussian_fit_r2(samples, bins=40)
        assert result.r_square < 0.9

    def test_bimodal_sample_has_poor_r2(self, rng):
        samples = np.concatenate(
            [rng.normal(-2.0, 0.3, 10000), rng.normal(2.0, 0.3, 10000)]
        )
        result = gaussian_fit_r2(samples, bins=40)
        assert result.r_square < 0.5

    def test_fitted_density_peaks_at_mean(self, rng):
        samples = rng.normal(0.0, 1.0, size=5000)
        result = gaussian_fit_r2(samples, bins=30)
        fitted = result.fitted_density
        peak_center = result.bin_centers[np.argmax(fitted)]
        assert abs(peak_center - result.mean) < 0.5

    def test_rejects_tiny_sample(self):
        with pytest.raises(ConfigurationError):
            gaussian_fit_r2(np.arange(5.0))

    def test_rejects_constant_sample(self):
        with pytest.raises(ConfigurationError):
            gaussian_fit_r2(np.full(100, 3.0))

    def test_rejects_too_few_bins(self, rng):
        with pytest.raises(ConfigurationError):
            gaussian_fit_r2(rng.normal(size=100), bins=2)


class TestHistogramPdf:
    def test_density_normalisation(self, rng):
        samples = rng.normal(size=5000)
        centers, density = histogram_pdf(samples, bins=25)
        width = centers[1] - centers[0]
        assert (density * width).sum() == pytest.approx(1.0, rel=1e-6)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            histogram_pdf(np.array([1.0]))


class TestEmpiricalCdf:
    def test_monotone_and_bounded(self, rng):
        samples = rng.normal(size=1000)
        xs, cdf = empirical_cdf(samples)
        assert np.all(np.diff(xs) >= 0.0)
        assert np.all(np.diff(cdf) > 0.0)
        assert cdf[0] == pytest.approx(1.0 / 1000)
        assert cdf[-1] == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf(np.array([]))
