"""Unit tests for the integration rules of eq. (28)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import ConfigurationError
from repro.stats.integration import (
    NormalDist,
    PointMass,
    expectation_2d,
    expectation_2d_adaptive,
    gauss_hermite_rule,
    midpoint_rule,
    quantile_rule,
)
from repro.stats.quadform import Chi2Match


@pytest.fixture()
def normal():
    return NormalDist(mean=2.2, sigma=0.02)


@pytest.fixture()
def chi2():
    return Chi2Match(offset=1e-4, scale=2e-5, dof=3.0)


class TestNormalDist:
    def test_pdf_matches_scipy(self, normal):
        x = np.array([2.15, 2.2, 2.25])
        np.testing.assert_allclose(
            normal.pdf(x), sps.norm.pdf(x, 2.2, 0.02), rtol=1e-12
        )

    def test_ppf_matches_scipy(self, normal):
        q = np.array([0.1, 0.5, 0.9])
        np.testing.assert_allclose(
            normal.ppf(q), sps.norm.ppf(q, 2.2, 0.02), rtol=1e-12
        )

    def test_degenerate(self):
        dist = NormalDist(mean=1.0, sigma=0.0)
        assert dist.is_degenerate
        np.testing.assert_allclose(dist.ppf(np.array([0.1, 0.9])), 1.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            NormalDist(mean=0.0, sigma=-1.0)


class TestMidpointRule:
    def test_weights_sum_to_one(self, normal):
        rule = midpoint_rule(normal, n_points=10)
        assert rule.weights.sum() == pytest.approx(1.0)
        assert rule.points.shape == (10,)

    def test_unnormalized_weights_close_to_one(self, normal):
        rule = midpoint_rule(normal, n_points=50, normalize=False)
        assert rule.weights.sum() == pytest.approx(1.0, abs=0.01)

    def test_points_bracket_distribution(self, normal):
        rule = midpoint_rule(normal, n_points=10, tail=1e-6)
        assert rule.points[0] > normal.mean - 6.0 * normal.sigma
        assert rule.points[-1] < normal.mean + 6.0 * normal.sigma
        assert np.all(np.diff(rule.points) > 0.0)

    def test_expectation_of_identity(self, normal):
        rule = midpoint_rule(normal, n_points=10)
        assert rule.weights @ rule.points == pytest.approx(normal.mean, rel=1e-6)

    def test_expectation_of_square(self, normal):
        # l0 = 10 already integrates smooth moments well (paper claim).
        rule = midpoint_rule(normal, n_points=10)
        second = rule.weights @ rule.points**2
        assert second == pytest.approx(
            normal.mean**2 + normal.sigma**2, rel=1e-3
        )

    def test_works_for_chi2(self, chi2):
        rule = midpoint_rule(chi2, n_points=10)
        mean = rule.weights @ rule.points
        assert mean == pytest.approx(chi2.mean(), rel=0.02)

    def test_point_mass(self):
        rule = midpoint_rule(PointMass(3.0), n_points=10)
        assert rule.points.tolist() == [3.0]
        assert rule.weights.tolist() == [1.0]

    def test_degenerate_normal(self):
        rule = midpoint_rule(NormalDist(mean=5.0, sigma=0.0), n_points=10)
        assert rule.points.tolist() == [5.0]

    def test_rejects_bad_args(self, normal):
        with pytest.raises(ConfigurationError):
            midpoint_rule(normal, n_points=0)
        with pytest.raises(ConfigurationError):
            midpoint_rule(normal, tail=0.7)


class TestGaussHermiteRule:
    def test_integrates_polynomials_exactly(self, normal):
        rule = gauss_hermite_rule(normal, n_points=8)
        assert rule.weights.sum() == pytest.approx(1.0, rel=1e-12)
        assert rule.weights @ rule.points == pytest.approx(normal.mean)
        assert rule.weights @ rule.points**2 == pytest.approx(
            normal.mean**2 + normal.sigma**2
        )
        third = rule.weights @ rule.points**3
        expected = normal.mean**3 + 3.0 * normal.mean * normal.sigma**2
        assert third == pytest.approx(expected)

    def test_integrates_exp(self, normal):
        # E[e^X] = e^(mu + sigma^2/2) for X ~ N(mu, sigma^2).
        rule = gauss_hermite_rule(normal, n_points=16)
        value = rule.weights @ np.exp(rule.points)
        assert value == pytest.approx(
            np.exp(normal.mean + normal.sigma**2 / 2.0), rel=1e-10
        )

    def test_degenerate(self):
        rule = gauss_hermite_rule(NormalDist(mean=2.0, sigma=0.0))
        assert rule.points.tolist() == [2.0]


class TestQuantileRule:
    def test_mean_reproduced(self, chi2):
        rule = quantile_rule(chi2, n_points=200)
        assert rule.weights @ rule.points == pytest.approx(chi2.mean(), rel=0.01)

    def test_equal_weights(self, chi2):
        rule = quantile_rule(chi2, n_points=16)
        np.testing.assert_allclose(rule.weights, 1.0 / 16.0)

    def test_point_mass(self):
        rule = quantile_rule(PointMass(2.0), n_points=16)
        assert rule.points.tolist() == [2.0]


class TestExpectation2D:
    def test_separable_function(self, normal, chi2):
        rule_u = gauss_hermite_rule(normal, n_points=16)
        rule_v = quantile_rule(chi2, n_points=400)
        value = expectation_2d(lambda u, v: u * v, rule_u, rule_v)
        assert value == pytest.approx(normal.mean * chi2.mean(), rel=0.01)

    def test_constant_function(self, normal, chi2):
        rule_u = midpoint_rule(normal, n_points=10)
        rule_v = midpoint_rule(chi2, n_points=10)
        value = expectation_2d(lambda u, v: np.ones_like(u * v), rule_u, rule_v)
        assert value == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self, normal, chi2):
        rule_u = midpoint_rule(normal, n_points=10)
        rule_v = midpoint_rule(chi2, n_points=10)
        with pytest.raises(ConfigurationError):
            expectation_2d(lambda u, v: np.zeros(3), rule_u, rule_v)

    def test_midpoint_matches_adaptive_reference(self, normal, chi2):
        # The paper's l0 x l0 midpoint sum against scipy dblquad.
        def g(u, v):
            return np.exp(-3.0 * u) * (1.0 + v * 1e3)

        rule_u = midpoint_rule(normal, n_points=10)
        rule_v = midpoint_rule(chi2, n_points=10)
        fast = expectation_2d(g, rule_u, rule_v)
        exact = expectation_2d_adaptive(g, normal, chi2)
        assert fast == pytest.approx(exact, rel=2e-3)

    def test_adaptive_degenerate_dims(self):
        u = PointMass(2.0)
        v = NormalDist(mean=3.0, sigma=0.0)
        value = expectation_2d_adaptive(lambda a, b: a * b, u, v)
        assert value == pytest.approx(6.0)

    def test_adaptive_one_degenerate_dim(self, normal):
        value = expectation_2d_adaptive(
            lambda u, v: u + v, normal, PointMass(1.0)
        )
        assert value == pytest.approx(normal.mean + 1.0, rel=1e-6)
