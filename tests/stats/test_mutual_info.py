"""Unit tests for the joint-PDF diagnostics (Fig. 6/7 machinery)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.mutual_info import (
    correlation_coefficient,
    joint_pdf_comparison,
    mutual_information,
)


class TestMutualInformation:
    def test_independent_variables_near_zero(self, rng):
        u = rng.normal(size=100000)
        v = rng.normal(size=100000)
        mi = mutual_information(u, v, bins=20)
        assert 0.0 <= mi < 0.01

    def test_identical_variables_high(self, rng):
        u = rng.normal(size=50000)
        mi = mutual_information(u, u, bins=20)
        assert mi > 1.5

    def test_linear_dependence_detected(self, rng):
        u = rng.normal(size=50000)
        v = 0.8 * u + 0.2 * rng.normal(size=50000)
        assert mutual_information(u, v) > 0.5

    def test_nonlinear_dependence_detected(self, rng):
        # Zero correlation but strong dependence.
        u = rng.normal(size=50000)
        v = u**2 + 0.1 * rng.normal(size=50000)
        assert abs(correlation_coefficient(u, v)) < 0.05
        assert mutual_information(u, v) > 0.3

    def test_rejects_mismatched_arrays(self, rng):
        with pytest.raises(ConfigurationError):
            mutual_information(rng.normal(size=10), rng.normal(size=20))

    def test_symmetry(self, rng):
        u = rng.normal(size=30000)
        v = 0.5 * u + rng.normal(size=30000)
        assert mutual_information(u, v) == pytest.approx(
            mutual_information(v, u)
        )


class TestJointPdfComparison:
    def test_independent_pair_small_error(self, rng):
        u = rng.normal(size=200000)
        v = rng.chisquare(4, size=200000)
        cmp = joint_pdf_comparison(u, v, bins=20)
        # For truly independent variables the normalized error is just
        # histogram noise.
        assert cmp.max_normalized_error < 0.15

    def test_dependent_pair_large_error(self, rng):
        u = rng.normal(size=100000)
        v = u + 0.1 * rng.normal(size=100000)
        cmp = joint_pdf_comparison(u, v, bins=20)
        assert cmp.max_normalized_error > 0.5

    def test_shapes(self, rng):
        cmp = joint_pdf_comparison(
            rng.normal(size=5000), rng.normal(size=5000), bins=15
        )
        assert cmp.joint.shape == (15, 15)
        assert cmp.product.shape == (15, 15)
        assert cmp.u_centers.shape == (15,)
        assert cmp.normalized_error.shape == (15, 15)

    def test_marginal_product_integrates_to_one(self, rng):
        cmp = joint_pdf_comparison(
            rng.normal(size=50000), rng.normal(size=50000), bins=20
        )
        du = np.diff(cmp.u_centers).mean()
        dv = np.diff(cmp.v_centers).mean()
        assert cmp.product.sum() * du * dv == pytest.approx(1.0, rel=0.02)
        assert cmp.joint.sum() * du * dv == pytest.approx(1.0, rel=0.02)

    def test_rejects_small_sample(self, rng):
        with pytest.raises(ConfigurationError):
            joint_pdf_comparison(rng.normal(size=50), rng.normal(size=50))


class TestCorrelationCoefficient:
    def test_perfect_correlation(self):
        u = np.arange(100.0)
        assert correlation_coefficient(u, 2.0 * u + 1.0) == pytest.approx(1.0)

    def test_anticorrelation(self):
        u = np.arange(100.0)
        assert correlation_coefficient(u, -u) == pytest.approx(-1.0)

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            correlation_coefficient(np.array([1.0]), np.array([2.0]))
