"""Unit tests for quadratic-form distributions (eq. (29)-(30), Imhof)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import ConfigurationError, NumericalError
from repro.stats.quadform import Chi2Match, QuadraticForm


def _random_psd(rng, dim, scale=1.0):
    a = rng.standard_normal((dim, dim))
    return scale * (a @ a.T) / dim


class TestMoments:
    def test_mean_is_offset_plus_trace(self, rng):
        matrix = _random_psd(rng, 5)
        form = QuadraticForm(offset=2.0, matrix=matrix)
        assert form.mean() == pytest.approx(2.0 + np.trace(matrix))

    def test_variance_is_two_trace_squared(self, rng):
        matrix = _random_psd(rng, 5)
        form = QuadraticForm(offset=0.0, matrix=matrix)
        assert form.var() == pytest.approx(2.0 * np.sum(matrix * matrix))

    def test_moments_match_sampling(self, rng):
        matrix = _random_psd(rng, 4)
        form = QuadraticForm(offset=1.0, matrix=matrix)
        samples = form.sample(rng, 200000)
        assert samples.mean() == pytest.approx(form.mean(), rel=0.02)
        assert samples.var() == pytest.approx(form.var(), rel=0.05)

    def test_skewness_positive_for_psd(self, rng):
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 4))
        assert form.skewness() > 0.0

    def test_identity_matrix_is_chi2(self):
        dim = 6
        form = QuadraticForm(offset=0.0, matrix=np.eye(dim))
        assert form.mean() == pytest.approx(dim)
        assert form.var() == pytest.approx(2.0 * dim)
        assert form.skewness() == pytest.approx(sps.chi2.stats(dim, moments="s"))

    def test_degenerate_detection(self):
        form = QuadraticForm(offset=3.0, matrix=np.zeros((3, 3)))
        assert form.is_degenerate
        assert form.mean() == 3.0

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            QuadraticForm(offset=0.0, matrix=np.ones((2, 3)))


class TestChi2Match:
    def test_exact_for_scaled_identity(self):
        # z' (c I) z = c * chi2(dim): the two-moment match is exact.
        dim, c = 5, 0.3
        form = QuadraticForm(offset=1.0, matrix=c * np.eye(dim))
        match = form.chi2_match()
        assert match.scale == pytest.approx(c)
        assert match.dof == pytest.approx(dim)
        x = np.linspace(1.0, 6.0, 30)
        np.testing.assert_allclose(
            match.cdf(x), sps.chi2.cdf((x - 1.0) / c, dim), rtol=1e-12
        )

    def test_preserves_mean_and_variance(self, rng):
        form = QuadraticForm(offset=0.5, matrix=_random_psd(rng, 6))
        match = form.chi2_match()
        assert match.mean() == pytest.approx(form.mean())
        assert match.var() == pytest.approx(form.var())

    def test_paper_formula(self, rng):
        # a = tr(C^2)/tr(C), b = tr(C)^2/tr(C^2) (eq. (30)).
        matrix = _random_psd(rng, 4)
        form = QuadraticForm(offset=0.0, matrix=matrix)
        match = form.chi2_match()
        tr = np.trace(matrix)
        tr2 = np.sum(matrix * matrix)
        assert match.scale == pytest.approx(tr2 / tr)
        assert match.dof == pytest.approx(tr**2 / tr2)

    def test_cdf_close_to_empirical(self, rng):
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 8))
        match = form.chi2_match()
        samples = form.sample(rng, 100000)
        for q in (0.1, 0.5, 0.9):
            x = np.quantile(samples, q)
            assert match.cdf(x) == pytest.approx(q, abs=0.03)

    def test_ppf_cdf_round_trip(self, rng):
        match = QuadraticForm(offset=1.0, matrix=_random_psd(rng, 5)).chi2_match()
        q = np.array([0.01, 0.5, 0.99])
        np.testing.assert_allclose(match.cdf(match.ppf(q)), q, rtol=1e-9)

    def test_support_brackets_mass(self, rng):
        match = QuadraticForm(offset=1.0, matrix=_random_psd(rng, 5)).chi2_match()
        lo, hi = match.support(tail=1e-6)
        assert match.cdf(lo) == pytest.approx(1e-6, rel=1e-3)
        assert match.cdf(hi) == pytest.approx(1.0 - 1e-6, rel=1e-3)

    def test_pdf_integrates_to_one(self, rng):
        match = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 6)).chi2_match()
        lo, hi = match.support(tail=1e-12)
        x = np.linspace(lo, hi, 40001)
        assert np.trapezoid(match.pdf(x), x) == pytest.approx(1.0, abs=1e-4)

    def test_degenerate_raises(self):
        form = QuadraticForm(offset=0.0, matrix=np.zeros((2, 2)))
        with pytest.raises(NumericalError):
            form.chi2_match()


class TestHbeMatch:
    def test_matches_three_moments(self, rng):
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 5))
        match = form.hbe_match()
        assert match.mean() == pytest.approx(form.mean())
        assert match.var() == pytest.approx(form.var())
        # Skewness of offset + a*chi2(b) is sqrt(8/b).
        assert np.sqrt(8.0 / match.dof) == pytest.approx(form.skewness())

    def test_hbe_at_least_as_good_in_tail(self, rng):
        # One dominant eigenvalue: strongly skewed, where HBE helps.
        matrix = np.diag([1.0, 0.05, 0.05, 0.05])
        form = QuadraticForm(offset=0.0, matrix=matrix)
        samples = form.sample(rng, 400000)
        x = np.quantile(samples, 0.99)
        err_chi2 = abs(form.chi2_match().cdf(x) - 0.99)
        err_hbe = abs(form.hbe_match().cdf(x) - 0.99)
        assert err_hbe <= err_chi2 + 5e-4


class TestImhof:
    def test_matches_chi2_exactly(self):
        dim = 4
        form = QuadraticForm(offset=0.0, matrix=np.eye(dim))
        for x in (1.0, 4.0, 9.0):
            assert form.imhof_cdf(x) == pytest.approx(
                sps.chi2.cdf(x, dim), abs=1e-6
            )

    def test_offset_shifts_cdf(self):
        form_a = QuadraticForm(offset=0.0, matrix=np.eye(3))
        form_b = QuadraticForm(offset=2.0, matrix=np.eye(3))
        assert form_b.imhof_cdf(5.0) == pytest.approx(
            form_a.imhof_cdf(3.0), abs=1e-6
        )

    def test_matches_empirical_cdf(self, rng):
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 5))
        samples = form.sample(rng, 200000)
        for q in (0.1, 0.5, 0.9):
            x = float(np.quantile(samples, q))
            assert form.imhof_cdf(x) == pytest.approx(q, abs=0.01)

    def test_degenerate_step_function(self):
        form = QuadraticForm(offset=2.0, matrix=np.zeros((2, 2)))
        assert form.imhof_cdf(1.0) == 0.0
        assert form.imhof_cdf(3.0) == 1.0

    def test_chi2_match_close_to_imhof(self, rng):
        # The paper's Fig. 8 claim: the cheap chi-square approximation
        # agrees well with the exact distribution.
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 8))
        match = form.chi2_match()
        xs = np.linspace(match.ppf(0.02), match.ppf(0.98), 9)
        for x in xs:
            assert match.cdf(float(x)) == pytest.approx(
                form.imhof_cdf(float(x)), abs=0.03
            )


class TestImhofBatched:
    """The vectorized ``imhof_sf`` fast path (shared eigendecomposition,
    one batched oscillatory quadrature) vs the legacy adaptive reference.

    The adaptive integrator itself carries ~1e-5 error on very small
    spectra, so tolerances compare against its accuracy, not round-off.
    """

    def test_array_input_matches_per_point_adaptive(self, rng):
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 8))
        lam, _scale = form._imhof_spectrum
        xs = np.linspace(form.mean() * 0.2, form.mean() * 2.5, 12)
        batched = form.imhof_sf(xs)
        adaptive = np.array(
            [
                form._imhof_sf_adaptive(lam, (x - form.offset) / _scale, 200)
                for x in xs
            ]
        )
        assert isinstance(batched, np.ndarray)
        np.testing.assert_allclose(batched, adaptive, atol=1e-6)

    def test_scalar_input_returns_float(self, rng):
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 5))
        out = form.imhof_sf(form.mean())
        assert isinstance(out, float)
        assert out == pytest.approx(float(form.imhof_sf(np.array([form.mean()]))[0]))

    def test_fast_path_off_matches(self, rng):
        from repro.kernels import use_fast_paths

        form = QuadraticForm(offset=0.5, matrix=_random_psd(rng, 6))
        xs = np.linspace(form.mean() * 0.3, form.mean() * 2.0, 6)
        with use_fast_paths(True):
            fast = form.imhof_sf(xs)
        with use_fast_paths(False):
            reference = form.imhof_sf(xs)
        np.testing.assert_allclose(fast, reference, atol=5e-5)

    def test_chi2_reference_values(self):
        dim = 6
        form = QuadraticForm(offset=0.0, matrix=np.eye(dim))
        xs = sps.chi2.ppf(np.linspace(0.05, 0.95, 11), dim)
        np.testing.assert_allclose(
            form.imhof_sf(xs), sps.chi2.sf(xs, dim), atol=1e-7
        )

    def test_rank_one_falls_back_to_adaptive(self):
        # A single eigenvalue decays too slowly for the truncated
        # oscillatory quadrature; the adaptive fallback still answers
        # (with the legacy integrator's own ~1e-3 rank-one accuracy).
        form = QuadraticForm(offset=0.0, matrix=np.diag([1.0, 0.0, 0.0]))
        xs = np.array([0.5, 1.0, 4.0])
        np.testing.assert_allclose(
            form.imhof_sf(xs), sps.chi2.sf(xs, 1), atol=1e-3
        )

    def test_survival_monotone_and_bounded(self, rng):
        form = QuadraticForm(offset=1.0, matrix=_random_psd(rng, 7))
        xs = np.linspace(form.offset, form.mean() * 3.0, 60)
        sf = form.imhof_sf(xs)
        assert np.all((sf >= 0.0) & (sf <= 1.0))
        assert np.all(np.diff(sf) <= 1e-8)

    def test_degenerate_array_step(self):
        form = QuadraticForm(offset=2.0, matrix=np.zeros((2, 2)))
        np.testing.assert_array_equal(
            form.imhof_sf(np.array([1.0, 2.0, 3.0])), [1.0, 0.0, 0.0]
        )

    def test_rejects_non_finite_x(self, rng):
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 4))
        with pytest.raises(ConfigurationError):
            form.imhof_sf(np.array([1.0, np.nan]))
        with pytest.raises(ConfigurationError):
            form.imhof_sf(np.inf)

    def test_cdf_complements_sf(self, rng):
        form = QuadraticForm(offset=0.0, matrix=_random_psd(rng, 5))
        xs = np.linspace(form.mean() * 0.5, form.mean() * 1.5, 7)
        np.testing.assert_allclose(
            form.imhof_cdf(xs) + form.imhof_sf(xs), 1.0, atol=1e-12
        )


class TestSampling:
    def test_sample_from_factors_matches_definition(self, rng):
        matrix = _random_psd(rng, 4)
        form = QuadraticForm(offset=1.5, matrix=matrix)
        z = rng.standard_normal((10, 4))
        values = form.sample_from_factors(z)
        expected = 1.5 + np.einsum("ni,ij,nj->n", z, matrix, z)
        np.testing.assert_allclose(values, expected)

    def test_sample_from_factors_single_vector(self, rng):
        form = QuadraticForm(offset=0.0, matrix=np.eye(3))
        z = np.array([1.0, 2.0, 2.0])
        assert form.sample_from_factors(z)[0] == pytest.approx(9.0)

    def test_sample_from_factors_dim_check(self, rng):
        form = QuadraticForm(offset=0.0, matrix=np.eye(3))
        with pytest.raises(ConfigurationError):
            form.sample_from_factors(np.zeros((5, 4)))

    def test_sample_rejects_zero(self, rng):
        form = QuadraticForm(offset=0.0, matrix=np.eye(3))
        with pytest.raises(ConfigurationError):
            form.sample(rng, 0)
