"""Unit tests for the area-scaled Weibull distribution."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import ConfigurationError
from repro.stats.weibull import (
    AreaScaledWeibull,
    fit_weibull_slope,
    weakest_link_sf,
    weibull_plot_coordinates,
)


class TestAreaScaledWeibull:
    def test_cdf_sf_complementary(self):
        law = AreaScaledWeibull(alpha=100.0, beta=2.0, area=3.0)
        t = np.linspace(0.0, 300.0, 20)
        np.testing.assert_allclose(law.cdf(t) + law.sf(t), 1.0, atol=1e-12)

    def test_characteristic_life_unit_area(self):
        law = AreaScaledWeibull(alpha=100.0, beta=2.0, area=1.0)
        assert law.cdf(100.0) == pytest.approx(1.0 - np.exp(-1.0))

    def test_area_scaling_weakest_link(self):
        # A device of area 4 == four unit devices in series.
        big = AreaScaledWeibull(alpha=100.0, beta=1.5, area=4.0)
        unit = AreaScaledWeibull(alpha=100.0, beta=1.5, area=1.0)
        t = np.array([20.0, 60.0, 120.0])
        np.testing.assert_allclose(big.sf(t), unit.sf(t) ** 4)

    def test_ppf_cdf_round_trip(self):
        law = AreaScaledWeibull(alpha=55.0, beta=1.3, area=2.5)
        q = np.array([1e-9, 1e-4, 0.1, 0.5, 0.99])
        np.testing.assert_allclose(law.cdf(law.ppf(q)), q, rtol=1e-10)

    def test_ppf_rejects_out_of_range(self):
        law = AreaScaledWeibull(alpha=1.0, beta=1.0)
        with pytest.raises(ValueError):
            law.ppf(1.0)

    def test_pdf_integrates_to_cdf(self):
        law = AreaScaledWeibull(alpha=10.0, beta=2.4, area=1.7)
        t = np.linspace(0.0, 40.0, 20001)
        integral = np.trapezoid(law.pdf(t), t)
        assert integral == pytest.approx(law.cdf(40.0), rel=1e-5)

    def test_pdf_zero_at_origin_for_beta_gt_one(self):
        law = AreaScaledWeibull(alpha=10.0, beta=2.0)
        assert law.pdf(0.0) == 0.0

    def test_matches_scipy_weibull_min(self):
        alpha, beta = 42.0, 1.8
        law = AreaScaledWeibull(alpha=alpha, beta=beta, area=1.0)
        t = np.array([5.0, 20.0, 60.0])
        np.testing.assert_allclose(
            law.cdf(t), sps.weibull_min.cdf(t, beta, scale=alpha), rtol=1e-12
        )

    def test_mean_against_scipy(self):
        law = AreaScaledWeibull(alpha=42.0, beta=1.8, area=1.0)
        assert law.mean() == pytest.approx(
            sps.weibull_min.mean(1.8, scale=42.0), rel=1e-10
        )

    def test_mean_decreases_with_area(self):
        small = AreaScaledWeibull(alpha=42.0, beta=1.8, area=1.0)
        large = AreaScaledWeibull(alpha=42.0, beta=1.8, area=10.0)
        assert large.mean() < small.mean()

    def test_sampling_matches_distribution(self, rng):
        law = AreaScaledWeibull(alpha=30.0, beta=1.4, area=2.0)
        samples = law.sample(rng, size=40000)
        result = sps.kstest(samples, law.cdf)
        assert result.pvalue > 0.01

    def test_hazard_constant_for_beta_one(self):
        law = AreaScaledWeibull(alpha=10.0, beta=1.0, area=2.0)
        t = np.array([1.0, 5.0, 20.0])
        np.testing.assert_allclose(law.hazard(t), 0.2)

    def test_hazard_increasing_for_beta_gt_one(self):
        law = AreaScaledWeibull(alpha=10.0, beta=2.0)
        assert law.hazard(2.0) < law.hazard(8.0)

    def test_scaled_to_area(self):
        law = AreaScaledWeibull(alpha=10.0, beta=2.0, area=1.0)
        other = law.scaled_to_area(5.0)
        assert other.area == 5.0
        assert other.alpha == law.alpha

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0, "beta": 1.0},
            {"alpha": 1.0, "beta": -1.0},
            {"alpha": 1.0, "beta": 1.0, "area": 0.0},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            AreaScaledWeibull(**kwargs)


class TestWeakestLink:
    def test_product_rule(self):
        laws = [
            AreaScaledWeibull(alpha=100.0, beta=1.5, area=2.0),
            AreaScaledWeibull(alpha=150.0, beta=2.0, area=3.0),
        ]
        t = np.array([30.0, 90.0])
        expected = laws[0].sf(t) * laws[1].sf(t)
        np.testing.assert_allclose(weakest_link_sf(t, laws), expected)

    def test_single_law_identity(self):
        law = AreaScaledWeibull(alpha=100.0, beta=1.5)
        t = np.array([10.0, 50.0])
        np.testing.assert_allclose(weakest_link_sf(t, [law]), law.sf(t))

    def test_scalar_input(self):
        law = AreaScaledWeibull(alpha=100.0, beta=1.5)
        assert isinstance(weakest_link_sf(10.0, [law]), float)


class TestWeibullFit:
    def test_recovers_parameters(self, rng):
        law = AreaScaledWeibull(alpha=200.0, beta=1.7, area=1.0)
        samples = law.sample(rng, size=20000)
        beta_hat, alpha_hat = fit_weibull_slope(samples)
        assert beta_hat == pytest.approx(1.7, rel=0.05)
        assert alpha_hat == pytest.approx(200.0, rel=0.05)

    def test_plot_coordinates_monotone(self, rng):
        law = AreaScaledWeibull(alpha=200.0, beta=1.7)
        samples = law.sample(rng, size=500)
        log_t, log_log = weibull_plot_coordinates(samples)
        assert np.all(np.diff(log_log) > 0.0)
        assert log_t.shape == log_log.shape

    def test_rejects_non_positive_times(self):
        with pytest.raises(ValueError):
            weibull_plot_coordinates(np.array([1.0, -2.0, 3.0]))

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            weibull_plot_coordinates(np.array([1.0]))
