"""Public API surface tests."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_all_sorted_unique(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.chip.geometry",
            "repro.chip.floorplan",
            "repro.chip.benchmarks",
            "repro.variation.components",
            "repro.variation.correlation",
            "repro.variation.pca",
            "repro.variation.quadtree",
            "repro.variation.wafer",
            "repro.variation.sampling",
            "repro.stats.weibull",
            "repro.stats.quadform",
            "repro.stats.integration",
            "repro.stats.histogram",
            "repro.stats.mutual_info",
            "repro.thermal.grid",
            "repro.thermal.solver",
            "repro.thermal.hotspot",
            "repro.power.activity",
            "repro.power.model",
            "repro.power.loop",
            "repro.core.obd_model",
            "repro.core.blod",
            "repro.core.closed_form",
            "repro.core.ensemble",
            "repro.core.hybrid",
            "repro.core.guardband",
            "repro.core.montecarlo",
            "repro.core.lifetime",
            "repro.core.analyzer",
            "repro.core.mission",
            "repro.core.burnin",
            "repro.core.sensitivity",
            "repro.leakage.degradation",
            "repro.thermal.transient",
            "repro.variation.extraction",
            "repro.io.hotspot_files",
            "repro.io.design_json",
            "repro.io.tables",
            "repro.cli",
            "repro.units",
            "repro.errors",
        ],
    )
    def test_module_importable_and_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a module docstring"

    def test_error_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.FloorplanError, repro.ConfigurationError)
        assert issubclass(repro.SolverError, repro.NumericalError)
        assert issubclass(repro.NumericalError, repro.ReproError)

    def test_methods_tuple(self):
        assert set(repro.METHODS) == {
            "st_fast",
            "st_mc",
            "hybrid",
            "temp_unaware",
            "guard",
            "mc",
        }

    def test_public_classes_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"
