"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro import obs
from repro.cli import build_parser, main


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def tiny_args():
    # A coarse grid keeps CLI invocations fast in tests.
    return ["--design", "C1", "--grid", "6"]


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_and_setup_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["info", "--design", "C1", "--setup", "x.json"]
            )

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.max_queue == 16
        assert args.rate == 2.0
        assert args.burst == 5
        assert args.drain_timeout == 30.0
        assert not args.no_cache

    def test_serve_rejects_bad_queue(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--max-queue", "0"])


class TestInfo:
    def test_text_output(self, capsys, tiny_args):
        code, out, _err = _run(capsys, "info", *tiny_args)
        assert code == 0
        assert "devices: 50,000" in out
        assert "block temperatures" in out

    def test_json_output(self, capsys, tiny_args):
        code, out, _err = _run(capsys, "info", *tiny_args, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["design"]["devices"] == 50_000


class TestLifetime:
    def test_single_method(self, capsys, tiny_args):
        code, out, _err = _run(
            capsys, "lifetime", *tiny_args, "--ppm", "10", "--method", "st_fast"
        )
        assert code == 0
        assert "st_fast" in out
        assert "years" in out

    def test_multiple_methods_json(self, capsys, tiny_args):
        code, out, _err = _run(
            capsys,
            "lifetime",
            *tiny_args,
            "--method",
            "st_fast",
            "guard",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert set(payload["lifetime_hours"]) == {"st_fast", "guard"}
        assert (
            payload["lifetime_hours"]["guard"]
            < payload["lifetime_hours"]["st_fast"]
        )

    def test_mc_method(self, capsys, tiny_args):
        code, out, _err = _run(
            capsys,
            "lifetime",
            *tiny_args,
            "--method",
            "mc",
            "--mc-chips",
            "60",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["lifetime_hours"]["mc"] > 0.0


class TestScenario:
    @pytest.fixture()
    def scenario_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {
                    "phases": [
                        {
                            "name": "burnin",
                            "duration_hours": 500.0,
                            "temperature_c": 110.0,
                        },
                        {"name": "field"},
                    ],
                    "mechanisms": ["obd", "nbti"],
                }
            )
        )
        return str(path)

    def test_text_output(self, capsys, tiny_args, scenario_file):
        code, out, _err = _run(
            capsys,
            "scenario",
            "run",
            *tiny_args,
            "--scenario",
            scenario_file,
            "--ppm",
            "100",
        )
        assert code == 0
        assert "scenario lifetime:" in out
        assert "mechanism damage shares:" in out
        assert "burnin" in out and "field" in out

    def test_json_matches_service_byte_for_byte(
        self, capsys, tiny_args, scenario_file
    ):
        from repro.payloads import dump_payload
        from repro.service.requests import JobRequest, run_job

        code, out, _err = _run(
            capsys,
            "scenario",
            "run",
            *tiny_args,
            "--scenario",
            scenario_file,
            "--ppm",
            "100",
            "--json",
        )
        assert code == 0
        request = JobRequest.from_dict(
            {
                "kind": "scenario",
                "design": "C1",
                "grid": 6,
                "ppm": 100.0,
                "scenario": json.loads(
                    open(scenario_file).read()  # noqa: SIM115
                ),
            }
        )
        assert out == dump_payload(run_job(request)) + "\n"

    def test_missing_file_reports_error(self, capsys, tiny_args, tmp_path):
        code, _out, err = _run(
            capsys,
            "scenario",
            "run",
            *tiny_args,
            "--scenario",
            str(tmp_path / "absent.json"),
        )
        assert code != 0
        assert "scenario" in err.lower()

    def test_invalid_schedule_reports_error(
        self, capsys, tiny_args, tmp_path
    ):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"phases": []}))
        code, _out, err = _run(
            capsys, "scenario", "run", *tiny_args, "--scenario", str(path)
        )
        assert code != 0
        assert "phase" in err.lower()


class TestCurve:
    def test_curve_points(self, capsys, tiny_args):
        code, out, _err = _run(
            capsys,
            "curve",
            *tiny_args,
            "--t-min",
            "1e5",
            "--t-max",
            "1e6",
            "--points",
            "5",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert len(payload["times_hours"]) == 5
        rel = payload["reliability"]
        assert all(0.0 <= r <= 1.0 for r in rel)
        assert rel == sorted(rel, reverse=True)


class TestThermal:
    def test_reports_all_blocks(self, capsys, tiny_args):
        code, out, _err = _run(capsys, "thermal", *tiny_args, "--json")
        assert code == 0
        payload = json.loads(out)
        assert len(payload["block_temperatures_c"]) == 8  # C1 blocks
        assert payload["spread_c"] > 0.0


class TestSensitivity:
    def test_tornado_output(self, capsys, tiny_args):
        code, out, _err = _run(
            capsys, "sensitivity", *tiny_args, "--ppm", "10"
        )
        assert code == 0
        assert "vdd" in out

    def test_json_output(self, capsys, tiny_args):
        code, out, _err = _run(
            capsys, "sensitivity", *tiny_args, "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["elasticities"]["vdd"] < 0.0


class TestReport:
    def test_one_page_report(self, capsys, tiny_args):
        code, out, _err = _run(capsys, "report", *tiny_args)
        assert code == 0
        assert "failure budget" in out
        assert "lifetimes:" in out


class TestObservability:
    @pytest.fixture(autouse=True)
    def restore_obs_state(self):
        """CLI runs may configure the repro logger; undo afterwards."""
        logger = logging.getLogger("repro")
        saved = (list(logger.handlers), logger.level, logger.propagate)
        yield
        logger.handlers[:] = saved[0]
        logger.setLevel(saved[1])
        logger.propagate = saved[2]
        obs.disable()
        obs.reset()

    def test_trace_file_written(self, capsys, tmp_path, tiny_args):
        trace = tmp_path / "trace.json"
        code, out, _err = _run(
            capsys,
            "lifetime",
            *tiny_args,
            "--method",
            "st_fast",
            "--trace",
            str(trace),
        )
        assert code == 0
        assert "years" in out  # normal output unaffected
        payload = json.loads(trace.read_text())
        assert set(payload) == {"trace", "metrics", "stages"}
        for stage in ("thermal", "pca", "blod", "st_fast"):
            assert stage in payload["stages"]
            assert payload["stages"][stage]["wall_time_s"] >= 0.0
        counters = payload["metrics"]["counters"]
        assert counters["pca.factors"] > 0
        assert counters["blod.blocks"] == 8  # C1 has 8 blocks
        # Tracing is a per-invocation affair: globally off again.
        assert not obs.is_enabled()

    def test_trace_disabled_by_default(self, capsys, tiny_args):
        code, _out, _err = _run(capsys, "info", *tiny_args)
        assert code == 0
        assert not obs.is_enabled()
        assert obs.trace_snapshot() == []

    def test_log_json_emits_json_lines(self, capsys, tiny_args):
        code, out, err = _run(
            capsys,
            "info",
            *tiny_args,
            "--log-json",
            "--log-level",
            "DEBUG",
        )
        assert code == 0
        assert "devices: 50,000" in out  # stdout stays human-facing
        lines = [ln for ln in err.splitlines() if ln.strip()]
        assert lines, "expected JSON diagnostics on stderr"
        for line in lines:
            record = json.loads(line)
            assert record["logger"].startswith("repro")
            assert "ts" in record

    def test_bad_log_level_reports_error(self, capsys, tiny_args):
        code, _out, err = _run(
            capsys, "info", *tiny_args, "--log-level", "LOUD"
        )
        assert code == 2
        assert "error:" in err

    def test_report_includes_timing_summary(self, capsys, tiny_args):
        code, out, _err = _run(capsys, "report", *tiny_args)
        assert code == 0
        assert "timing:" in out
        assert "analyzer.reliability" in out


class TestTraceShow:
    def _tree(self):
        return {
            "name": "service.job",
            "span_id": "a" * 16,
            "wall_time_s": 0.02,
            "attrs": {"kind": "mc", "trace_id": "t1"},
            "children": [
                {
                    "name": "exec.shard",
                    "wall_time_s": 0.01,
                    "attrs": {"shard": 0},
                    "children": [
                        {"name": "mc.chunk", "wall_time_s": 0.005}
                    ],
                }
            ],
        }

    def test_renders_service_trace_envelope(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"id": "j1", "trace": self._tree()}))
        code, out, _err = _run(capsys, "trace", "show", str(path))
        assert code == 0
        assert "service.job  20.00 ms" in out
        assert "exec.shard  10.00 ms" in out
        assert "[shard=0]" in out

    def test_renders_cli_trace_document(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(
            json.dumps({"trace": [self._tree()], "metrics": {}, "stages": {}})
        )
        code, out, _err = _run(capsys, "trace", "show", str(path))
        assert code == 0
        assert "mc.chunk" in out

    def test_depth_and_no_attrs(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(self._tree()))
        code, out, _err = _run(
            capsys, "trace", "show", str(path), "--depth", "1", "--no-attrs"
        )
        assert code == 0
        assert "mc.chunk" not in out
        assert "pruned" in out
        assert "[shard=0]" not in out

    def test_json_output(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(self._tree()))
        code, out, _err = _run(capsys, "trace", "show", str(path), "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["trace"][0]["name"] == "service.job"

    def test_missing_file_errors(self, capsys, tmp_path):
        code, _out, err = _run(
            capsys, "trace", "show", str(tmp_path / "nope.json")
        )
        assert code == 2
        assert "cannot read trace" in err

    def test_unrecognised_document_errors(self, capsys, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"spans": 3}))
        code, _out, err = _run(capsys, "trace", "show", str(path))
        assert code == 2
        assert "unrecognised trace document" in err


class TestBatch:
    def test_sweep_and_cache_hit_on_second_run(self, capsys, tmp_path):
        argv = [
            "batch",
            "--design",
            "C1",
            "--method",
            "st_fast",
            "guard",
            "--grid",
            "6",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--json",
        ]
        code, out, _err = _run(capsys, *argv)
        assert code == 0
        first = json.loads(out)
        assert first["totals"]["cells"] == 2
        assert first["totals"]["cache_hits"] == 0
        code, out, _err = _run(capsys, *argv)
        assert code == 0
        second = json.loads(out)
        assert second["totals"]["cache_hits"] == 2
        for a, b in zip(first["cells"], second["cells"], strict=True):
            assert a["lifetime_hours"] == b["lifetime_hours"]

    def test_table_output(self, capsys, tmp_path):
        code, out, _err = _run(
            capsys,
            "batch",
            "--design",
            "C1",
            "--grid",
            "6",
            "--cache-dir",
            str(tmp_path / "cache"),
        )
        assert code == 0
        assert "st_fast" in out
        assert "1 cells, 0 served from cache" in out

    def test_no_cache_bypasses(self, capsys, tmp_path):
        argv = [
            "batch",
            "--design",
            "C1",
            "--grid",
            "6",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--no-cache",
            "--json",
        ]
        _run(capsys, *argv)
        code, out, _err = _run(capsys, *argv)
        assert code == 0
        assert json.loads(out)["totals"]["cache_hits"] == 0

    def test_unknown_design_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--design", "Z9"])

    def test_fusion_flag_and_identical_results(self, capsys, tmp_path):
        argv = [
            "batch",
            "--design",
            "C1",
            "--method",
            "st_fast",
            "--temps",
            "40",
            "70",
            "--grid",
            "6",
            "--no-cache",
            "--json",
        ]
        code, out, _err = _run(capsys, *argv)
        assert code == 0
        fused = json.loads(out)
        assert fused["execution"]["fuse"] is True
        assert fused["execution"]["fused_cells"] == 2
        code, out, _err = _run(capsys, *argv, "--no-fuse")
        assert code == 0
        plain = json.loads(out)
        assert plain["execution"]["fuse"] is False
        assert plain["execution"]["fused_cells"] == 0
        for a, b in zip(fused["cells"], plain["cells"], strict=True):
            assert a["lifetime_hours"] == b["lifetime_hours"]

    def test_scenario_sweep_and_cache_hit(self, capsys, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {
                    "phases": [
                        {
                            "name": "burnin",
                            "duration_hours": 500.0,
                            "temperature_c": 110.0,
                        },
                        {"name": "field"},
                    ]
                }
            )
        )
        argv = [
            "batch",
            "--design",
            "C1",
            "--method",
            "st_fast",
            "--grid",
            "6",
            "--scenario",
            str(path),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--json",
        ]
        code, out, _err = _run(capsys, *argv)
        assert code == 0
        first = json.loads(out)
        assert first["totals"]["cache_hits"] == 0
        code, out, _err = _run(capsys, *argv)
        assert code == 0
        second = json.loads(out)
        assert second["totals"]["cache_hits"] == second["totals"]["cells"]
        for a, b in zip(first["cells"], second["cells"], strict=True):
            assert a["lifetime_hours"] == b["lifetime_hours"]

    def test_precision_flag_recorded(self, capsys, tmp_path):
        from repro.kernels import set_precision

        try:
            code, out, _err = _run(
                capsys,
                "--precision",
                "fast32",
                "batch",
                "--design",
                "C1",
                "--grid",
                "6",
                "--no-cache",
                "--json",
            )
        finally:
            # --precision flips the process-wide tier; restore it so the
            # rest of the in-process suite stays on the reference tier.
            set_precision("float64")
        assert code == 0
        payload = json.loads(out)
        assert payload["execution"]["precision"] == "fast32"


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        _run(
            capsys,
            "batch",
            "--design",
            "C1",
            "--grid",
            "6",
            "--cache-dir",
            cache_dir,
        )
        code, out, _err = _run(
            capsys, "cache", "stats", "--cache-dir", cache_dir, "--json"
        )
        assert code == 0
        stats = json.loads(out)
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        code, out, _err = _run(
            capsys, "cache", "clear", "--cache-dir", cache_dir, "--json"
        )
        assert code == 0
        assert json.loads(out)["removed"] == 1
        code, out, _err = _run(
            capsys, "cache", "stats", "--cache-dir", cache_dir, "--json"
        )
        assert json.loads(out)["entries"] == 0

    def test_stats_shared_tier_follows_cache_dir(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, out, _err = _run(
            capsys, "cache", "stats", "--cache-dir", cache_dir, "--json"
        )
        assert code == 0
        stats = json.loads(out)
        assert stats["tiers"]["local"]["root"] == cache_dir
        assert stats["tiers"]["shared"]["root"] == str(
            tmp_path / "cache" / "shared"
        )
        # A fresh CLI process has performed no lookups, so the text
        # output omits the (always-zero) per-process hit-ratio line.
        code, out, _err = _run(capsys, "cache", "stats", "--cache-dir", cache_dir)
        assert code == 0
        assert "hit ratio" not in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestBenchCommand:
    @pytest.fixture()
    def stub_results(self, monkeypatch):
        # The real harness takes a minute; the command logic is what the
        # CLI tests cover.
        results = {
            "schema": 1,
            "scale": "quick",
            "design": "C2",
            "micro": {
                "conductance_build": {
                    "reference_s": 0.02,
                    "fast_s": 0.001,
                    "speedup": 20.0,
                }
            },
            "end_to_end": {
                "reference_s": 1.0,
                "fast_s": 0.25,
                "speedup": 4.0,
                "power_loop_iterations": 12,
                "cache_hits": 11,
                "cache_misses": 1,
            },
        }
        import repro.kernels.bench as bench

        monkeypatch.setattr(
            bench, "run_kernel_benchmarks", lambda scale: {**results, "scale": scale}
        )
        return results

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "kernels", "--scale", "huge"])

    def test_no_save_prints_report(self, capsys, stub_results):
        code, out, _err = _run(capsys, "bench", "kernels", "--no-save")
        assert code == 0
        assert "conductance_build" in out
        assert "end_to_end" in out
        assert "wrote" not in out

    def test_writes_json_report(self, capsys, stub_results, tmp_path):
        target = tmp_path / "bench.json"
        code, out, _err = _run(
            capsys, "bench", "kernels", "--output", str(target)
        )
        assert code == 0
        assert str(target) in out
        payload = json.loads(target.read_text())
        assert payload["schema"] == 1
        assert payload["end_to_end"]["cache_hits"] == 11

    def test_json_output(self, capsys, stub_results, tmp_path):
        code, out, _err = _run(
            capsys,
            "bench",
            "kernels",
            "--scale",
            "full",
            "--output",
            str(tmp_path / "b.json"),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["scale"] == "full"


class TestJobs:
    def test_lifetime_reports_execution_backend(self, capsys, tiny_args):
        code, out, _err = _run(
            capsys,
            "lifetime",
            *tiny_args,
            "--method",
            "st_fast",
            "--jobs",
            "2",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["execution"] == {
            "backend": "process",
            "jobs": 2,
            "precision": "float64",
        }

    def test_default_is_serial(self, capsys, tiny_args, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        code, out, _err = _run(
            capsys,
            "lifetime",
            *tiny_args,
            "--method",
            "st_fast",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["execution"]["backend"] == "serial"

    def test_jobs_matches_serial_result(self, capsys, tiny_args):
        base = [
            "lifetime",
            *tiny_args,
            "--method",
            "mc",
            "--mc-chips",
            "60",
            "--json",
        ]
        _code, serial_out, _err = _run(capsys, *base)
        _code, jobs_out, _err = _run(capsys, *base, "--jobs", "2")
        serial = json.loads(serial_out)["lifetime_hours"]["mc"]
        parallel = json.loads(jobs_out)["lifetime_hours"]["mc"]
        assert serial == parallel

    def test_report_names_backend(self, capsys, tiny_args, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        code, out, _err = _run(capsys, "report", *tiny_args)
        assert code == 0
        assert "execution backend: serial (jobs=1)" in out

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lifetime", "--design", "C1", "--jobs", "0"]
            )


class TestFileInputs:
    def test_flp_input(self, capsys, tmp_path):
        flp = tmp_path / "chip.flp"
        flp.write_text(
            "hot\t1.0e-3\t1.0e-3\t0.0\t0.0\n"
            "cold\t1.0e-3\t1.0e-3\t1.0e-3\t0.0\n"
        )
        ptrace = tmp_path / "chip.ptrace"
        ptrace.write_text("hot\tcold\n1.5\t0.1\n")
        code, out, _err = _run(
            capsys,
            "thermal",
            "--flp",
            str(flp),
            "--ptrace",
            str(ptrace),
            "--grid",
            "4",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert (
            payload["block_temperatures_c"]["hot"]
            > payload["block_temperatures_c"]["cold"]
        )

    def test_setup_input(self, capsys, tmp_path, small_floorplan, fast_config):
        from repro.io.design_json import save_setup

        path = tmp_path / "setup.json"
        save_setup(path, small_floorplan, config=fast_config)
        code, out, _err = _run(
            capsys, "info", "--setup", str(path), "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["design"]["devices"] == small_floorplan.n_devices

    def test_missing_setup_reports_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        code, _out, err = _run(capsys, "info", "--setup", str(bad))
        assert code == 2
        assert "error:" in err
