"""Regression tests for the ReproError hierarchy and the API contract.

The library promises that every error it raises is catchable as
:class:`repro.errors.ReproError`, and that historical ``except ValueError``
call sites keep working for input-validation errors (the dual-inheritance
bridge documented in :mod:`repro.errors`).  reprolint's RPL003 rule
enforces the raising side; these tests pin the catching side.
"""

import numpy as np
import pytest

from repro import units
from repro.chip.benchmarks import make_benchmark
from repro.core.mission import OperatingPhase
from repro.errors import (
    ConfigurationError,
    FloorplanError,
    NumericalError,
    ReproError,
    SolverError,
    UnitError,
)
from repro.stats.weibull import AreaScaledWeibull

_ALL_ERRORS = (
    ConfigurationError,
    FloorplanError,
    NumericalError,
    SolverError,
    UnitError,
)


class TestHierarchyInvariants:
    @pytest.mark.parametrize("exc_type", _ALL_ERRORS)
    def test_everything_is_a_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    @pytest.mark.parametrize("exc_type", _ALL_ERRORS)
    def test_validation_errors_bridge_to_value_error(self, exc_type):
        assert issubclass(exc_type, ValueError)

    def test_specialisations(self):
        assert issubclass(FloorplanError, ConfigurationError)
        assert issubclass(UnitError, ConfigurationError)
        assert issubclass(SolverError, NumericalError)
        assert not issubclass(ConfigurationError, NumericalError)

    def test_base_is_not_value_error(self):
        # Catching ValueError must not swallow non-validation ReproErrors.
        assert not issubclass(ReproError, ValueError)


class TestApiErrorsAreCatchable:
    def test_unknown_method(self, small_analyzer):
        with pytest.raises(ReproError):
            small_analyzer.reliability(1e4, method="bogus")

    def test_mc_lifetime_redirect(self, small_analyzer):
        with pytest.raises(ReproError):
            small_analyzer.lifetime(10.0, method="mc")

    def test_bad_block_temperatures(self, small_floorplan, fast_config):
        from repro import ReliabilityAnalyzer

        with pytest.raises(ReproError):
            ReliabilityAnalyzer(
                small_floorplan,
                config=fast_config,
                block_temperatures=np.array([85.0]),
            )

    def test_unknown_benchmark(self):
        with pytest.raises(ReproError):
            make_benchmark("NOT_A_DESIGN")

    def test_unit_conversion(self):
        with pytest.raises(ReproError):
            units.celsius_to_kelvin(-400.0)

    def test_mission_phase_validation(self):
        with pytest.raises(ReproError):
            OperatingPhase(name="", fraction=0.5, block_temperatures=85.0)

    def test_weibull_validation(self):
        with pytest.raises(ReproError):
            AreaScaledWeibull(alpha=-1.0, beta=2.0)

    def test_weibull_nan_input(self):
        model = AreaScaledWeibull(alpha=1e6, beta=2.0)
        with pytest.raises(NumericalError):
            model.cdf(np.array([1.0, np.nan]))


class TestLegacyValueErrorCompat:
    """Callers written against the pre-hierarchy API must keep working."""

    def test_configuration_error_caught_as_value_error(self, small_analyzer):
        with pytest.raises(ValueError):
            small_analyzer.reliability(1e4, method="bogus")

    def test_unit_error_caught_as_value_error(self):
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(-5.0)
