"""Envelope provenance and payload round-trips (repro.payloads).

Every JSON document the CLI or the service emits carries ``version``
(library version from package metadata) and ``schema_version``
(:data:`repro.payloads.PAYLOAD_SCHEMA_VERSION`); the documents round-trip
through :func:`repro.payloads.dump_payload` without loss.
"""

import json

import pytest

import repro
from repro import payloads
from repro.chip.benchmarks import make_benchmark
from repro.cli import main
from repro.core.analyzer import AnalysisConfig, ReliabilityAnalyzer
from repro.payloads import PAYLOAD_SCHEMA_VERSION


@pytest.fixture(scope="module")
def analyzer():
    return ReliabilityAnalyzer(
        make_benchmark("C1"), config=AnalysisConfig(grid_size=6)
    )


class TestVersion:
    def test_library_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__

    def test_stamp_envelope_adds_provenance(self):
        payload = payloads.stamp_envelope({"x": 1})
        assert payload["version"] == repro.__version__
        assert payload["schema_version"] == PAYLOAD_SCHEMA_VERSION

    def test_stamp_envelope_preserves_existing(self):
        payload = payloads.stamp_envelope({"schema_version": 99})
        assert payload["schema_version"] == 99


class TestBuilders:
    def test_lifetime_payload_round_trips(self, analyzer):
        payload = payloads.lifetime_payload(analyzer, 10.0, ("st_fast", "guard"))
        restored = json.loads(payloads.dump_payload(payload))
        assert restored == payload
        assert set(restored["lifetime_hours"]) == {"st_fast", "guard"}
        assert restored["schema_version"] == PAYLOAD_SCHEMA_VERSION
        assert restored["version"] == repro.__version__

    def test_curve_payload_round_trips(self, analyzer):
        payload = payloads.curve_payload(
            analyzer, "st_fast", t_min=1e4, t_max=1e6, points=5
        )
        restored = json.loads(payloads.dump_payload(payload))
        assert restored == payload
        assert len(restored["times_hours"]) == 5
        assert len(restored["reliability"]) == 5

    def test_report_payload_carries_envelope(self):
        payload = payloads.report_payload(
            lambda: ReliabilityAnalyzer(
                make_benchmark("C1"), config=AnalysisConfig(grid_size=6)
            )
        )
        assert payload["schema_version"] == PAYLOAD_SCHEMA_VERSION
        assert payload["version"] == repro.__version__
        assert "timing:" in payload["report"]
        assert "execution backend:" in payload["report"]


class TestCliEnvelopes:
    """Every ``--json`` command stamps version/schema_version via _emit."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["info", "--design", "C1", "--grid", "6", "--json"],
            ["lifetime", "--design", "C1", "--grid", "6", "--json"],
            [
                "curve",
                "--design",
                "C1",
                "--grid",
                "6",
                "--t-min",
                "1e4",
                "--t-max",
                "1e6",
                "--points",
                "3",
                "--json",
            ],
            ["thermal", "--design", "C1", "--grid", "6", "--json"],
        ],
    )
    def test_json_output_is_stamped(self, capsys, argv):
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == repro.__version__
        assert payload["schema_version"] == PAYLOAD_SCHEMA_VERSION

    def test_batch_json_round_trips_with_schema_version(self, capsys, tmp_path):
        argv = [
            "batch",
            "--design",
            "C1",
            "--grid",
            "6",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == PAYLOAD_SCHEMA_VERSION
        assert payload["version"] == repro.__version__
        # Round-trip: serialise -> parse -> byte-identical serialisation.
        dumped = payloads.dump_payload(payload)
        assert payloads.dump_payload(json.loads(dumped)) == dumped

    def test_report_json_is_stamped(self, capsys):
        assert main(["report", "--design", "C1", "--grid", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == PAYLOAD_SCHEMA_VERSION
        assert payload["version"] == repro.__version__
