"""Unit tests for the text-report renderers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.report import (
    design_report,
    format_table,
    heat_map,
    reliability_sparkline,
)
from repro.thermal.solver import TemperatureField


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All lines same width.
        assert len({len(line) for line in lines}) == 1

    def test_empty_rows_ok(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["1"]])

    def test_empty_header_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])


class TestHeatMap:
    @pytest.fixture()
    def field(self, small_analyzer):
        assert small_analyzer.thermal is not None
        return small_analyzer.thermal.field

    def test_renders_with_legend(self, field):
        text = heat_map(field)
        assert "degC" in text
        assert len(text.splitlines()) >= 2

    def test_hottest_cell_densest_glyph(self, field):
        text = heat_map(field, legend=False)
        assert "@" in text  # the max is always mapped to the ramp top

    def test_uniform_field(self, small_analyzer):
        grid = small_analyzer.thermal.field.grid
        uniform = TemperatureField(
            grid=grid, values=np.full(grid.n_cells, 50.0)
        )
        text = heat_map(uniform, legend=False)
        assert set(text.replace("\n", "")) == {" "}

    def test_max_width_respected(self, field):
        text = heat_map(field, max_width=16, legend=False)
        assert all(len(line) <= 16 for line in text.splitlines())

    def test_rejects_tiny_width(self, field):
        with pytest.raises(ConfigurationError):
            heat_map(field, max_width=2)


class TestSparkline:
    def test_monotone_curve_renders(self):
        times = np.logspace(4, 6, 30)
        reliability = np.exp(-((times / 1e6) ** 2))
        text = reliability_sparkline(times, reliability)
        assert "1-R" in text
        assert len(text.splitlines()) == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            reliability_sparkline(np.arange(3.0), np.arange(4.0))


class TestDesignReport:
    def test_contains_all_sections(self, small_analyzer):
        text = design_report(small_analyzer, ppms=(10.0,))
        assert "design:" in text
        assert "thermal profile" in text
        assert "lifetimes:" in text
        assert "failure budget" in text
        for name in small_analyzer.floorplan.block_names:
            assert name in text

    def test_method_ordering_visible(self, small_analyzer):
        text = design_report(small_analyzer, ppms=(10.0,))
        # st_fast line shows a larger lifetime than the guard line.
        lines = {line.split()[0]: line for line in text.splitlines()
                 if line.strip().startswith(("st_fast", "guard"))}
        st = float(lines["st_fast"].split()[-1].rstrip("y"))
        guard = float(lines["guard"].split()[-1].rstrip("y"))
        assert st > guard
