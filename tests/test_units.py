"""Unit tests for physical constants and unit helpers."""

import math

import pytest

from repro import units


class TestTemperatureConversion:
    def test_round_trip(self):
        assert units.kelvin_to_celsius(
            units.celsius_to_kelvin(85.0)
        ) == pytest.approx(85.0)

    def test_known_points(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert units.celsius_to_kelvin(100.0) == pytest.approx(373.15)
        assert units.kelvin_to_celsius(273.15) == pytest.approx(0.0)

    def test_rejects_below_absolute_zero(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(-300.0)
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(-1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(math.nan)
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(math.inf)


class TestDurationConversion:
    def test_round_trip(self):
        assert units.hours_to_years(
            units.years_to_hours(10.0)
        ) == pytest.approx(10.0)

    def test_one_year(self):
        assert units.years_to_hours(1.0) == pytest.approx(24.0 * 365.25)


class TestConstants:
    def test_boltzmann(self):
        assert units.BOLTZMANN_EV == pytest.approx(8.617e-5, rel=1e-3)

    def test_absolute_zero(self):
        assert units.ABSOLUTE_ZERO_CELSIUS == pytest.approx(-273.15)
