"""Unit tests for physical constants and unit helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import ReproError, UnitError


class TestTemperatureConversion:
    def test_round_trip(self):
        assert units.kelvin_to_celsius(
            units.celsius_to_kelvin(85.0)
        ) == pytest.approx(85.0)

    def test_known_points(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert units.celsius_to_kelvin(100.0) == pytest.approx(373.15)
        assert units.kelvin_to_celsius(273.15) == pytest.approx(0.0)

    def test_rejects_below_absolute_zero(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(-300.0)
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(-1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(math.nan)
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(math.inf)

    @pytest.mark.parametrize("value", [math.nan, math.inf, -math.inf])
    def test_non_finite_rejected_both_directions(self, value):
        with pytest.raises(UnitError):
            units.celsius_to_kelvin(value)
        with pytest.raises(UnitError):
            units.kelvin_to_celsius(value)

    def test_absolute_zero_is_exactly_representable(self):
        assert units.celsius_to_kelvin(units.ABSOLUTE_ZERO_CELSIUS) == 0.0
        assert units.kelvin_to_celsius(0.0) == units.ABSOLUTE_ZERO_CELSIUS

    def test_just_below_absolute_zero_rejected(self):
        below_c = math.nextafter(units.ABSOLUTE_ZERO_CELSIUS, -math.inf)
        with pytest.raises(UnitError):
            units.celsius_to_kelvin(below_c)
        with pytest.raises(UnitError):
            units.kelvin_to_celsius(-math.nextafter(0.0, 1.0))

    def test_unit_errors_are_library_and_legacy_errors(self):
        with pytest.raises(ReproError):
            units.celsius_to_kelvin(-400.0)
        assert issubclass(UnitError, ValueError)
        assert issubclass(UnitError, ReproError)

    @given(st.floats(min_value=-273.15, max_value=1000.0))
    def test_round_trip_from_celsius(self, temp_c):
        temp_k = units.celsius_to_kelvin(temp_c)
        assert temp_k >= 0.0
        # Tiny |temp_c| below ulp(273.15) is absorbed by the offset, so
        # the round trip is approximate, not exact.
        assert units.kelvin_to_celsius(temp_k) == pytest.approx(
            temp_c, rel=1e-15, abs=1e-12
        )

    @given(st.floats(min_value=0.0, max_value=1500.0))
    def test_round_trip_from_kelvin(self, temp_k):
        temp_c = units.kelvin_to_celsius(temp_k)
        assert temp_c >= units.ABSOLUTE_ZERO_CELSIUS
        # The k -> c -> k direction genuinely loses the last ulp for
        # about a fifth of inputs; approximate equality is the contract.
        assert units.celsius_to_kelvin(temp_c) == pytest.approx(
            temp_k, rel=1e-15, abs=1e-12
        )


class TestDurationConversion:
    def test_round_trip(self):
        assert units.hours_to_years(
            units.years_to_hours(10.0)
        ) == pytest.approx(10.0)

    def test_one_year(self):
        assert units.years_to_hours(1.0) == pytest.approx(24.0 * 365.25)


class TestConstants:
    def test_boltzmann(self):
        assert units.BOLTZMANN_EV == pytest.approx(8.617e-5, rel=1e-3)

    def test_absolute_zero(self):
        assert units.ABSOLUTE_ZERO_CELSIUS == pytest.approx(-273.15)


class TestUnitDeclarations:
    """The declaration helpers mechanism plugins use (RPL014)."""

    def test_values_pass_through_unchanged(self):
        assert units.celsius(100.0) == 100.0
        assert units.kelvin(300.0) == 300.0
        assert units.volts(1.2) == 1.2
        assert units.electron_volts(0.58) == 0.58

    def test_integers_become_floats(self):
        value = units.celsius(100)
        assert isinstance(value, float)

    @pytest.mark.parametrize(
        "declare,bad",
        [
            (units.celsius, -300.0),
            (units.celsius, float("nan")),
            (units.kelvin, -1.0),
            (units.kelvin, float("inf")),
            (units.volts, 0.0),
            (units.volts, -1.2),
            (units.volts, float("nan")),
            (units.electron_volts, 0.0),
            (units.electron_volts, float("-inf")),
        ],
    )
    def test_unphysical_constants_rejected(self, declare, bad):
        with pytest.raises(UnitError):
            declare(bad)
