"""Tests for the per-(grid, package) sparse-factorization cache."""

from functools import partial

import numpy as np
import pytest

from repro import obs
from repro.chip.geometry import GridSpec
from repro.kernels import use_fast_paths
from repro.thermal.factor_cache import (
    _MAX_ENTRIES,
    cached_factorization,
    clear_factor_cache,
    factor_cache_stats,
)
from repro.thermal.grid import PackageModel
from repro.thermal.solver import _build_conductance_matrix, solve_steady_state


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_factor_cache()
    yield
    clear_factor_cache()


@pytest.fixture()
def grid():
    return GridSpec(nx=10, ny=8, width=6.0, height=5.0)


@pytest.fixture()
def package():
    return PackageModel(ambient_temperature=45.0)


def _power(grid, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 0.5, grid.n_cells)


class TestCachedFactorization:
    def test_hit_on_second_lookup(self, grid, package):
        build = partial(_build_conductance_matrix, grid, package)
        _solve, hit = cached_factorization(grid, package, build)
        assert not hit
        solve, hit = cached_factorization(grid, package, build)
        assert hit
        stats = factor_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        # The cached back-substitution is an actual solver.
        rhs = _power(grid)
        matrix = build()
        np.testing.assert_allclose(matrix @ solve(rhs), rhs, atol=1e-9)

    def test_distinct_keys_do_not_collide(self, grid, package):
        other_grid = GridSpec(nx=6, ny=6, width=6.0, height=5.0)
        other_package = PackageModel(ambient_temperature=60.0)
        for g, p in [
            (grid, package),
            (other_grid, package),
            (grid, other_package),
        ]:
            _solve, hit = cached_factorization(
                g, p, partial(_build_conductance_matrix, g, p)
            )
            assert not hit
        assert factor_cache_stats()["entries"] == 3

    def test_lru_bound(self, package):
        for n in range(_MAX_ENTRIES + 3):
            g = GridSpec(nx=3 + n, ny=3, width=2.0, height=1.0)
            cached_factorization(
                g, package, partial(_build_conductance_matrix, g, package)
            )
        assert factor_cache_stats()["entries"] == _MAX_ENTRIES

    def test_clear_resets(self, grid, package):
        cached_factorization(
            grid, package, partial(_build_conductance_matrix, grid, package)
        )
        clear_factor_cache()
        stats = factor_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "entries": 0}


class TestSolverIntegration:
    def test_cached_solution_matches_direct_spsolve(self, grid, package):
        power = _power(grid)
        with use_fast_paths(False):
            reference = solve_steady_state(grid, power, package)
        with use_fast_paths(True):
            cold = solve_steady_state(grid, power, package)
            warm = solve_steady_state(grid, power, package)
        np.testing.assert_allclose(
            cold.values, reference.values, rtol=1e-12, atol=0.0
        )
        # The warm solve reuses the factors, bit-identically.
        np.testing.assert_array_equal(warm.values, cold.values)
        stats = factor_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_obs_counters_mirror_stats(self, grid, package):
        obs.reset()
        obs.enable()
        try:
            with use_fast_paths(True):
                solve_steady_state(grid, _power(grid), package)
                solve_steady_state(grid, _power(grid, seed=1), package)
            from repro.obs import metrics

            assert metrics.get_counter("thermal.factor_cache.miss") == 1
            assert metrics.get_counter("thermal.factor_cache.hit") == 1
        finally:
            obs.disable()
            obs.reset()
