"""Unit tests for the HotSpotLite floorplan thermal facade."""

import numpy as np
import pytest

from repro.chip.benchmarks import make_alpha_processor, make_manycore
from repro.errors import ConfigurationError
from repro.thermal.grid import PackageModel
from repro.thermal.hotspot import HotSpotLite, uniform_temperature_result


@pytest.fixture()
def hotspot():
    return HotSpotLite(mesh_resolution=32)


class TestHotSpotLite:
    def test_mesh_follows_die_aspect(self, hotspot, tiny_floorplan):
        mesh = hotspot.mesh_for(tiny_floorplan)
        assert mesh.width == tiny_floorplan.width
        assert mesh.height == tiny_floorplan.height
        assert mesh.nx == 32

    def test_cell_powers_conserve_total(self, hotspot, tiny_floorplan):
        mesh = hotspot.mesh_for(tiny_floorplan)
        cell_power = hotspot.cell_powers(tiny_floorplan, mesh)
        assert cell_power.sum() == pytest.approx(tiny_floorplan.total_power)

    def test_hot_block_is_hotter(self, hotspot, tiny_floorplan):
        result = hotspot.analyze(tiny_floorplan)
        temps = result.block_temperature_map(tiny_floorplan)
        assert temps["hot"] > temps["cool"]
        assert result.block_spread > 0.0

    def test_block_temperatures_above_ambient(self, hotspot, tiny_floorplan):
        result = hotspot.analyze(tiny_floorplan)
        assert np.all(
            result.block_temperatures > hotspot.package.ambient_temperature
        )

    def test_hottest_block_temperature(self, hotspot, tiny_floorplan):
        result = hotspot.analyze(tiny_floorplan)
        assert result.hottest_block_temperature == pytest.approx(
            result.block_temperatures.max()
        )

    def test_alpha_processor_profile_shape(self, hotspot):
        # Fig. 1(a): execution units form hot spots, caches stay cool, and
        # there is a clear tens-of-degrees contrast across the die.
        fp = make_alpha_processor()
        result = hotspot.analyze(fp)
        temps = result.block_temperature_map(fp)
        assert temps["intexec"] > temps["icache"]
        assert temps["fpadd"] > temps["l2_left"]
        assert 5.0 < result.block_spread < 60.0

    def test_manycore_active_cores_hotter(self, hotspot):
        # Fig. 1(b): active tiles are local hot spots.
        fp = make_manycore(n_cores_x=4, n_cores_y=4, active_cores=(5,))
        result = hotspot.analyze(fp)
        temps = result.block_temperature_map(fp)
        active = temps["core_1_1"]
        assert all(
            active >= temps[name] for name in fp.block_names
        )

    def test_higher_package_resistance_runs_hotter(self, tiny_floorplan):
        cool = HotSpotLite(PackageModel(package_resistance=50.0))
        warm = HotSpotLite(PackageModel(package_resistance=150.0))
        assert (
            warm.analyze(tiny_floorplan).hottest_block_temperature
            > cool.analyze(tiny_floorplan).hottest_block_temperature
        )

    def test_rejects_tiny_mesh(self):
        with pytest.raises(ConfigurationError):
            HotSpotLite(mesh_resolution=2)

    def test_block_temperature_map_checks_floorplan(
        self, hotspot, tiny_floorplan, small_floorplan
    ):
        result = hotspot.analyze(tiny_floorplan)
        with pytest.raises(ConfigurationError):
            result.block_temperature_map(small_floorplan)


class TestUniformTemperatureResult:
    def test_all_blocks_at_given_temperature(self, tiny_floorplan):
        result = uniform_temperature_result(tiny_floorplan, 100.0)
        np.testing.assert_allclose(result.block_temperatures, 100.0)
        assert result.block_spread == 0.0
        assert result.field.spread == 0.0
