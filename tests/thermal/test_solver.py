"""Unit tests for the steady-state thermal solver."""

import numpy as np
import pytest

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError, SolverError
from repro.thermal.grid import PackageModel
from repro.thermal.solver import TemperatureField, solve_steady_state


@pytest.fixture()
def grid():
    return GridSpec(nx=12, ny=12, width=6.0, height=6.0)


@pytest.fixture()
def package():
    return PackageModel(ambient_temperature=45.0)


class TestPackageModel:
    def test_lateral_conductance_square_cells(self, grid, package):
        g_x, g_y = package.lateral_conductance(grid)
        assert g_x == pytest.approx(g_y)
        assert g_x == pytest.approx(
            package.silicon_conductivity * package.die_thickness
        )

    def test_vertical_conductance(self, grid, package):
        g_v = package.vertical_conductance(grid)
        cell_area = grid.cell_width * grid.cell_height
        assert g_v == pytest.approx(cell_area / package.package_resistance)

    def test_spreading_length_reasonable(self, package):
        # For the default constants the spreading length is a few mm.
        assert 1.0 < package.spreading_length() < 5.0

    def test_rejects_bad_constants(self):
        with pytest.raises(ConfigurationError):
            PackageModel(silicon_conductivity=0.0)
        with pytest.raises(ConfigurationError):
            PackageModel(die_thickness=-1.0)
        with pytest.raises(ConfigurationError):
            PackageModel(package_resistance=0.0)


class TestSolveSteadyState:
    def test_zero_power_gives_ambient(self, grid, package):
        field = solve_steady_state(grid, np.zeros(grid.n_cells), package)
        np.testing.assert_allclose(field.values, 45.0, atol=1e-9)

    def test_uniform_power_gives_uniform_rise(self, grid, package):
        density = 0.3  # W/mm^2
        cell_area = grid.cell_width * grid.cell_height
        power = np.full(grid.n_cells, density * cell_area)
        field = solve_steady_state(grid, power, package)
        expected = 45.0 + density * package.package_resistance
        np.testing.assert_allclose(field.values, expected, rtol=1e-9)

    def test_hot_spot_local_maximum(self, grid, package):
        power = np.zeros(grid.n_cells)
        center = grid.cell_of_point(3.0, 3.0)
        power[center] = 2.0
        field = solve_steady_state(grid, power, package)
        assert np.argmax(field.values) == center
        assert field.spread > 0.0

    def test_temperature_decays_away_from_hot_spot(self, grid, package):
        power = np.zeros(grid.n_cells)
        center = grid.cell_of_point(3.0, 3.0)
        power[center] = 2.0
        field = solve_steady_state(grid, power, package)
        t_center = field.values[center]
        t_near = field.values[grid.cell_of_point(3.5, 3.0)]
        t_far = field.values[grid.cell_of_point(5.75, 5.75)]
        assert t_center > t_near > t_far

    def test_energy_balance(self, grid, package, rng):
        # Total heat leaving through the package equals total power in.
        power = rng.uniform(0.0, 0.5, size=grid.n_cells)
        field = solve_steady_state(grid, power, package)
        g_v = package.vertical_conductance(grid)
        heat_out = g_v * np.sum(field.values - package.ambient_temperature)
        assert heat_out == pytest.approx(power.sum(), rel=1e-9)

    def test_superposition(self, grid, package, rng):
        # The system is linear: solutions superpose (minus ambient).
        p1 = rng.uniform(0.0, 0.5, size=grid.n_cells)
        p2 = rng.uniform(0.0, 0.5, size=grid.n_cells)
        f1 = solve_steady_state(grid, p1, package).values - 45.0
        f2 = solve_steady_state(grid, p2, package).values - 45.0
        f12 = solve_steady_state(grid, p1 + p2, package).values - 45.0
        np.testing.assert_allclose(f12, f1 + f2, rtol=1e-9)

    def test_rejects_negative_power(self, grid, package):
        power = np.zeros(grid.n_cells)
        power[0] = -1.0
        with pytest.raises(SolverError):
            solve_steady_state(grid, power, package)

    def test_rejects_wrong_shape(self, grid, package):
        with pytest.raises(SolverError):
            solve_steady_state(grid, np.zeros(grid.n_cells - 1), package)


class TestTemperatureField:
    def test_statistics(self, grid):
        values = np.linspace(40.0, 80.0, grid.n_cells)
        field = TemperatureField(grid=grid, values=values)
        assert field.min == 40.0
        assert field.max == 80.0
        assert field.spread == pytest.approx(40.0)

    def test_as_image_shape(self, grid):
        field = TemperatureField(grid=grid, values=np.zeros(grid.n_cells))
        assert field.as_image().shape == (grid.ny, grid.nx)

    def test_average_over_region(self, grid):
        values = np.arange(float(grid.n_cells))
        field = TemperatureField(grid=grid, values=values)
        fractions = np.zeros(grid.n_cells)
        fractions[0] = fractions[1] = 0.5
        assert field.average_over(fractions) == pytest.approx(0.5)

    def test_average_over_rejects_empty_region(self, grid):
        field = TemperatureField(grid=grid, values=np.zeros(grid.n_cells))
        with pytest.raises(SolverError):
            field.average_over(np.zeros(grid.n_cells))

    def test_shape_validation(self, grid):
        with pytest.raises(SolverError):
            TemperatureField(grid=grid, values=np.zeros(3))
