"""Unit tests for the transient thermal solver."""

import numpy as np
import pytest

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError, SolverError
from repro.thermal.grid import PackageModel
from repro.thermal.transient import TransientSolver


@pytest.fixture()
def grid():
    return GridSpec(nx=8, ny=8, width=4.0, height=4.0)


@pytest.fixture()
def solver(grid):
    return TransientSolver(grid, PackageModel(ambient_temperature=45.0))


class TestTransientSolver:
    def test_zero_power_stays_at_ambient(self, solver, grid):
        result = solver.simulate(
            np.zeros(grid.n_cells), duration=0.1, dt=0.01
        )
        np.testing.assert_allclose(result.fields, 45.0, atol=1e-9)

    def test_converges_to_steady_state(self, solver, grid, rng):
        power = rng.uniform(0.0, 0.3, size=grid.n_cells)
        tau = solver.slowest_time_constant
        result = solver.simulate(power, duration=15.0 * tau, dt=tau / 4.0)
        steady = solver.steady_state(power)
        np.testing.assert_allclose(
            result.fields[-1], steady.values, atol=0.05
        )
        assert result.settled(tolerance=0.1)

    def test_monotone_heating_from_ambient(self, solver, grid):
        power = np.zeros(grid.n_cells)
        power[grid.cell_of_point(2.0, 2.0)] = 1.0
        result = solver.simulate(power, duration=1.0, dt=0.05)
        hottest = result.max_trace()
        assert np.all(np.diff(hottest) >= -1e-9)

    def test_cooldown_from_hot_start(self, solver, grid):
        result = solver.simulate(
            np.zeros(grid.n_cells), duration=1.0, dt=0.05, initial=100.0
        )
        hottest = result.max_trace()
        assert np.all(np.diff(hottest) <= 1e-9)
        assert hottest[-1] < 100.0

    def test_time_constant_separation_from_obd_scales(self, solver):
        # The premise of using per-phase steady states in mission
        # analysis: thermal settling is sub-second, OBD scales are years.
        assert solver.time_constant < solver.slowest_time_constant
        assert solver.slowest_time_constant < 1.0

    def test_step_change_power_schedule(self, solver, grid):
        low = np.full(grid.n_cells, 0.005)
        high = np.full(grid.n_cells, 0.05)
        tau = solver.slowest_time_constant

        def schedule(t):
            return high if t > 10.0 * tau else low

        result = solver.simulate(
            None, duration=20.0 * tau, dt=tau / 4.0, power_schedule=schedule
        )
        mid = np.searchsorted(result.times, 10.0 * tau)
        assert result.max_trace()[-1] > result.max_trace()[mid] + 0.5

    def test_energy_balance_at_steady_state(self, solver, grid):
        power = np.full(grid.n_cells, 0.02)
        tau = solver.slowest_time_constant
        result = solver.simulate(power, duration=20.0 * tau, dt=tau / 2.0)
        g_v = solver.package.vertical_conductance(grid)
        heat_out = g_v * np.sum(
            result.fields[-1] - solver.package.ambient_temperature
        )
        assert heat_out == pytest.approx(power.sum(), rel=1e-3)

    def test_validation(self, solver, grid):
        with pytest.raises(ConfigurationError):
            solver.simulate(np.zeros(grid.n_cells), duration=0.0, dt=0.1)
        with pytest.raises(ConfigurationError):
            solver.simulate(np.zeros(grid.n_cells), duration=1.0, dt=2.0)
        with pytest.raises(ConfigurationError):
            solver.simulate(None, duration=1.0, dt=0.1)
        with pytest.raises(SolverError):
            solver.simulate(np.zeros(3), duration=1.0, dt=0.1)
        with pytest.raises(SolverError):
            solver.simulate(
                np.zeros(grid.n_cells),
                duration=1.0,
                dt=0.1,
                initial=np.zeros(5),
            )

    def test_field_accessors(self, solver, grid):
        result = solver.simulate(
            np.zeros(grid.n_cells), duration=0.2, dt=0.1
        )
        field = result.field_at(0)
        assert field.values.shape == (grid.n_cells,)
        assert result.cell_trace(0).shape == result.times.shape
