"""Unit tests for the variation budget (Table II)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.variation.components import VariationBudget


class TestVariationBudget:
    def test_table2_values(self):
        budget = VariationBudget.table2()
        assert budget.nominal_thickness == 2.2
        assert budget.three_sigma_ratio == 0.04
        assert budget.global_fraction == 0.50
        assert budget.spatial_fraction == 0.25
        assert budget.independent_fraction == 0.25

    def test_sigma_total(self):
        budget = VariationBudget.table2()
        assert budget.sigma_total == pytest.approx(0.04 * 2.2 / 3.0)

    def test_component_variances_sum_to_total(self):
        budget = VariationBudget.table2()
        total = (
            budget.sigma_global**2
            + budget.sigma_spatial**2
            + budget.sigma_independent**2
        )
        assert total == pytest.approx(budget.variance_total)

    def test_component_split_ratios(self):
        budget = VariationBudget.table2()
        assert budget.sigma_global**2 / budget.variance_total == pytest.approx(0.5)
        assert budget.sigma_spatial**2 / budget.variance_total == pytest.approx(0.25)
        assert budget.sigma_independent**2 / budget.variance_total == pytest.approx(
            0.25
        )

    def test_minimum_thickness_is_three_sigma_corner(self):
        budget = VariationBudget.table2()
        assert budget.minimum_thickness == pytest.approx(2.2 * 0.96)

    def test_scaled_preserves_split(self):
        budget = VariationBudget.table2().scaled(2.0)
        assert budget.three_sigma_ratio == pytest.approx(0.08)
        assert budget.sigma_global**2 / budget.variance_total == pytest.approx(0.5)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            VariationBudget.table2().scaled(0.0)

    def test_rejects_fractions_not_summing_to_one(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            VariationBudget(
                global_fraction=0.5,
                spatial_fraction=0.3,
                independent_fraction=0.3,
            )

    def test_rejects_negative_fraction(self):
        with pytest.raises(ConfigurationError):
            VariationBudget(
                global_fraction=1.2,
                spatial_fraction=-0.1,
                independent_fraction=-0.1,
            )

    def test_rejects_bad_nominal(self):
        with pytest.raises(ConfigurationError):
            VariationBudget(nominal_thickness=0.0)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            VariationBudget(three_sigma_ratio=-0.04)

    def test_zero_component_fraction_allowed(self):
        budget = VariationBudget(
            global_fraction=1.0,
            spatial_fraction=0.0,
            independent_fraction=0.0,
        )
        assert budget.sigma_spatial == 0.0
        assert budget.sigma_independent == 0.0
        assert budget.sigma_global == pytest.approx(budget.sigma_total)

    def test_frozen(self):
        budget = VariationBudget.table2()
        with pytest.raises(AttributeError):
            budget.nominal_thickness = 3.0  # type: ignore[misc]

    def test_sigma_values_are_finite_and_positive(self):
        budget = VariationBudget.table2()
        for value in (
            budget.sigma_total,
            budget.sigma_global,
            budget.sigma_spatial,
            budget.sigma_independent,
        ):
            assert math.isfinite(value)
            assert value > 0.0
