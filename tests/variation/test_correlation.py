"""Unit tests for the grid-based spatial correlation model."""

import numpy as np
import pytest

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError
from repro.variation.correlation import (
    SpatialCorrelationModel,
    cholesky_factor,
    exponential_kernel,
    gaussian_kernel,
    linear_kernel,
    nearest_correlation_matrix,
)


@pytest.fixture()
def grid():
    return GridSpec(nx=5, ny=5, width=5.0, height=5.0)


class TestKernels:
    def test_exponential_at_zero_and_decay(self):
        assert exponential_kernel(np.array(0.0), 2.0) == pytest.approx(1.0)
        assert exponential_kernel(np.array(2.0), 2.0) == pytest.approx(np.exp(-1.0))

    def test_gaussian_at_zero_and_decay(self):
        assert gaussian_kernel(np.array(0.0), 2.0) == pytest.approx(1.0)
        assert gaussian_kernel(np.array(2.0), 2.0) == pytest.approx(np.exp(-1.0))

    def test_linear_clips_at_zero(self):
        assert linear_kernel(np.array(3.0), 2.0) == 0.0
        assert linear_kernel(np.array(1.0), 2.0) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kernel", [exponential_kernel, gaussian_kernel, linear_kernel]
    )
    def test_kernels_reject_bad_length(self, kernel):
        with pytest.raises(ConfigurationError):
            kernel(np.array(1.0), 0.0)

    def test_monotone_decay(self):
        d = np.linspace(0.0, 10.0, 50)
        values = exponential_kernel(d, 3.0)
        assert np.all(np.diff(values) < 0.0)


class TestNearestCorrelationMatrix:
    def test_psd_input_unchanged(self):
        matrix = np.array([[1.0, 0.5], [0.5, 1.0]])
        out = nearest_correlation_matrix(matrix)
        np.testing.assert_allclose(out, matrix)

    def test_repairs_indefinite_matrix(self):
        # A "correlation" matrix that is not PSD.
        matrix = np.array(
            [[1.0, 0.9, 0.1], [0.9, 1.0, 0.9], [0.1, 0.9, 1.0]]
        )
        assert np.linalg.eigvalsh(matrix).min() < 0.0
        out = nearest_correlation_matrix(matrix)
        assert np.linalg.eigvalsh(out).min() >= -1e-12
        np.testing.assert_allclose(np.diag(out), 1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            nearest_correlation_matrix(np.ones((2, 3)))


class TestSpatialCorrelationModel:
    def test_correlation_matrix_properties(self, grid):
        model = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        corr = model.correlation_matrix()
        assert corr.shape == (25, 25)
        np.testing.assert_allclose(np.diag(corr), 1.0)
        np.testing.assert_allclose(corr, corr.T)
        assert np.linalg.eigvalsh(corr).min() >= -1e-10
        assert np.all(corr > 0.0)

    def test_correlation_decays_with_distance(self, grid):
        model = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        corr = model.correlation_matrix()
        # Cell 0 correlates more with neighbour 1 than with far corner 24.
        assert corr[0, 1] > corr[0, 24]

    def test_larger_rho_dist_means_stronger_correlation(self, grid):
        weak = SpatialCorrelationModel(grid=grid, rho_dist=0.25)
        strong = SpatialCorrelationModel(grid=grid, rho_dist=0.75)
        assert (
            strong.correlation_matrix()[0, 24]
            > weak.correlation_matrix()[0, 24]
        )

    def test_covariance_scaling(self, grid):
        model = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        sigma = 0.015
        cov = model.covariance_matrix(sigma)
        np.testing.assert_allclose(np.diag(cov), sigma**2)

    def test_covariance_zero_sigma(self, grid):
        model = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        np.testing.assert_allclose(model.covariance_matrix(0.0), 0.0)

    def test_covariance_rejects_negative_sigma(self, grid):
        model = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        with pytest.raises(ConfigurationError):
            model.covariance_matrix(-0.1)

    def test_correlation_between_matches_matrix(self, grid):
        model = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        corr = model.correlation_matrix()
        assert model.correlation_between(0, 7) == pytest.approx(
            corr[0, 7], rel=1e-6
        )

    def test_correlation_length_normalised_to_diagonal(self, grid):
        model = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        assert model.correlation_length == pytest.approx(0.5 * grid.diagonal)

    def test_rejects_unknown_kernel(self, grid):
        with pytest.raises(ConfigurationError):
            SpatialCorrelationModel(grid=grid, rho_dist=0.5, kernel="nope")

    def test_rejects_bad_rho(self, grid):
        with pytest.raises(ConfigurationError):
            SpatialCorrelationModel(grid=grid, rho_dist=0.0)

    def test_linear_kernel_is_repaired_to_psd(self, grid):
        model = SpatialCorrelationModel(grid=grid, rho_dist=0.3, kernel="linear")
        corr = model.correlation_matrix()
        assert np.linalg.eigvalsh(corr).min() >= -1e-10


class TestCholeskyFactor:
    def test_reconstructs_covariance(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 6))
        cov = a @ a.T + 0.1 * np.eye(6)
        factor = cholesky_factor(cov)
        np.testing.assert_allclose(factor @ factor.T, cov, atol=1e-8)

    def test_handles_rank_deficient(self):
        v = np.array([[1.0], [2.0], [3.0]])
        cov = v @ v.T  # rank 1
        factor = cholesky_factor(cov)
        np.testing.assert_allclose(factor @ factor.T, cov, atol=1e-6)
