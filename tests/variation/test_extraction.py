"""Unit tests for the [20]-style variation-model extraction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.variation.components import VariationBudget
from repro.variation.extraction import (
    empirical_site_covariance,
    extract_variation_model,
    fit_exponential_correlation,
    synthesize_measurements,
)


@pytest.fixture(scope="module")
def positions():
    # A 6x6 measurement-site array on a 10 mm die.
    xs = np.linspace(0.5, 9.5, 6)
    grid_x, grid_y = np.meshgrid(xs, xs)
    return np.column_stack([grid_x.ravel(), grid_y.ravel()])


@pytest.fixture(scope="module")
def campaign(positions, budget):
    rng = np.random.default_rng(77)
    measurements = synthesize_measurements(
        budget, positions, correlation_length=7.0, n_chips=600, rng=rng
    )
    return measurements


class TestSynthesize:
    def test_shape(self, campaign, positions):
        assert campaign.shape == (600, positions.shape[0])

    def test_mean_near_nominal(self, campaign, budget):
        assert campaign.mean() == pytest.approx(
            budget.nominal_thickness, abs=0.01
        )

    def test_total_variance_matches_budget(self, campaign, budget):
        assert campaign.std() == pytest.approx(budget.sigma_total, rel=0.1)

    def test_validation(self, budget, positions, rng):
        with pytest.raises(ConfigurationError):
            synthesize_measurements(budget, positions, 0.0, 10, rng)
        with pytest.raises(ConfigurationError):
            synthesize_measurements(budget, np.zeros((3, 3)), 1.0, 10, rng)


class TestCorrelationFit:
    def test_recovers_components_and_length(self, campaign, positions, budget):
        covariance = empirical_site_covariance(campaign)
        var_g, var_sp, var_ind, length, rms = fit_exponential_correlation(
            covariance, positions
        )
        assert var_g == pytest.approx(budget.sigma_global**2, rel=0.4)
        assert var_sp == pytest.approx(budget.sigma_spatial**2, rel=0.4)
        assert var_ind == pytest.approx(budget.sigma_independent**2, rel=0.4)
        assert length == pytest.approx(7.0, rel=0.5)
        assert rms < 0.3 * covariance.max()

    def test_pure_independent_data(self, positions, rng):
        budget = VariationBudget(
            global_fraction=0.5,
            spatial_fraction=0.0,
            independent_fraction=0.5,
        )
        measurements = synthesize_measurements(
            budget, positions, correlation_length=5.0, n_chips=400, rng=rng
        )
        covariance = empirical_site_covariance(measurements)
        _var_g, var_sp, var_ind, _length, _rms = fit_exponential_correlation(
            covariance, positions
        )
        # Essentially all non-global intra variance is the nugget.
        assert var_sp < 0.5 * var_ind


class TestFullExtraction:
    def test_round_trip_budget(self, campaign, positions, budget):
        result = extract_variation_model(campaign, positions)
        recovered = result.to_budget()
        assert recovered.nominal_thickness == pytest.approx(
            budget.nominal_thickness, abs=0.01
        )
        assert recovered.sigma_total == pytest.approx(
            budget.sigma_total, rel=0.15
        )
        # Component shares within extraction tolerance.
        assert recovered.global_fraction == pytest.approx(0.5, abs=0.15)
        assert recovered.spatial_fraction == pytest.approx(0.25, abs=0.15)
        assert recovered.independent_fraction == pytest.approx(0.25, abs=0.15)

    def test_site_correlation_valid(self, campaign, positions):
        result = extract_variation_model(campaign, positions)
        corr = result.site_correlation
        np.testing.assert_allclose(np.diag(corr), 1.0)
        assert np.linalg.eigvalsh(corr).min() >= -1e-10

    def test_correlation_decays_with_distance(self, campaign, positions):
        result = extract_variation_model(campaign, positions)
        corr = result.site_correlation
        near = corr[0, 1]
        far = corr[0, len(positions) - 1]
        assert near > far

    def test_extracted_model_reproduces_lifetime(
        self, campaign, positions, budget, small_floorplan, fast_config
    ):
        """The end-to-end loop: silicon data -> extracted budget ->
        reliability within a few percent of the true-model answer."""
        from repro import ReliabilityAnalyzer

        result = extract_variation_model(campaign, positions)
        true_analyzer = ReliabilityAnalyzer(
            small_floorplan, budget=budget, config=fast_config
        )
        extracted_analyzer = ReliabilityAnalyzer(
            small_floorplan, budget=result.to_budget(), config=fast_config
        )
        lt_true = true_analyzer.lifetime(10)
        lt_extracted = extracted_analyzer.lifetime(10)
        assert lt_extracted == pytest.approx(lt_true, rel=0.15)

    def test_validation(self, positions):
        with pytest.raises(ConfigurationError):
            extract_variation_model(np.zeros((4, len(positions))), positions)
        with pytest.raises(ConfigurationError):
            extract_variation_model(np.zeros((20, 2)), positions[:2])
