"""Unit tests for the PCA canonical thickness model (eq. (2))."""

import numpy as np
import pytest

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError
from repro.variation.components import VariationBudget
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.pca import (
    CanonicalThicknessModel,
    build_canonical_model,
    explained_variance_ratio,
)


@pytest.fixture()
def correlation():
    grid = GridSpec(nx=4, ny=4, width=4.0, height=4.0)
    return SpatialCorrelationModel(grid=grid, rho_dist=0.5)


@pytest.fixture()
def model(budget, correlation):
    return build_canonical_model(budget, correlation, energy=1.0)


class TestBuildCanonicalModel:
    def test_dimensions(self, model):
        assert model.n_grids == 16
        # Global factor + up to 16 spatial components.
        assert 2 <= model.n_factors <= 17

    def test_factor_zero_is_global(self, model, budget):
        np.testing.assert_allclose(
            model.sensitivities[:, 0], budget.sigma_global
        )

    def test_grid_means_nominal(self, model, budget):
        np.testing.assert_allclose(model.grid_means, budget.nominal_thickness)

    def test_sigma_independent(self, model, budget):
        assert model.sigma_independent == pytest.approx(budget.sigma_independent)

    def test_reconstructs_spatial_covariance(self, budget, correlation):
        model = build_canonical_model(budget, correlation, energy=1.0)
        expected = correlation.covariance_matrix(
            budget.sigma_spatial
        ) + budget.sigma_global**2
        np.testing.assert_allclose(model.grid_covariance(), expected, atol=1e-12)

    def test_device_sigma_matches_total_budget(self, model, budget):
        np.testing.assert_allclose(
            model.device_sigma(), budget.sigma_total, rtol=1e-10
        )

    def test_energy_truncation_reduces_factors(self, budget, correlation):
        full = build_canonical_model(budget, correlation, energy=1.0)
        truncated = build_canonical_model(budget, correlation, energy=0.9)
        assert truncated.n_factors < full.n_factors
        # Truncated model keeps at least 90% of the spatial variance.
        spatial_full = np.trace(
            correlation.covariance_matrix(budget.sigma_spatial)
        )
        spatial_kept = np.sum(truncated.sensitivities[:, 1:] ** 2)
        assert spatial_kept >= 0.9 * spatial_full - 1e-12

    def test_max_factors_cap(self, budget, correlation):
        model = build_canonical_model(budget, correlation, max_factors=3)
        assert model.n_factors == 4  # global + 3 spatial

    def test_mean_offsets(self, budget, correlation):
        offsets = np.linspace(-0.01, 0.01, 16)
        model = build_canonical_model(budget, correlation, mean_offsets=offsets)
        np.testing.assert_allclose(
            model.grid_means, budget.nominal_thickness + offsets
        )

    def test_mean_offsets_shape_checked(self, budget, correlation):
        with pytest.raises(ConfigurationError):
            build_canonical_model(
                budget, correlation, mean_offsets=np.zeros(5)
            )

    def test_rejects_bad_energy(self, budget, correlation):
        with pytest.raises(ConfigurationError):
            build_canonical_model(budget, correlation, energy=0.0)

    def test_zero_spatial_budget(self, correlation):
        budget = VariationBudget(
            global_fraction=0.5,
            spatial_fraction=0.0,
            independent_fraction=0.5,
        )
        model = build_canonical_model(budget, correlation)
        assert model.n_factors == 1  # only the global factor


class TestCanonicalThicknessModel:
    def test_base_thickness_single_chip(self, model):
        z = np.zeros(model.n_factors)
        np.testing.assert_allclose(model.base_thickness(z), model.grid_means)

    def test_base_thickness_global_shift(self, model, budget):
        z = np.zeros(model.n_factors)
        z[0] = 1.0
        base = model.base_thickness(z)
        np.testing.assert_allclose(
            base, model.grid_means + budget.sigma_global
        )

    def test_base_thickness_batch_shape(self, model):
        z = np.zeros((7, model.n_factors))
        assert model.base_thickness(z).shape == (7, model.n_grids)

    def test_base_thickness_rejects_wrong_dim(self, model):
        with pytest.raises(ConfigurationError):
            model.base_thickness(np.zeros(model.n_factors + 1))

    def test_empirical_covariance_matches(self, model, rng):
        z = rng.standard_normal((60000, model.n_factors))
        base = model.base_thickness(z)
        emp_cov = np.cov(base.T)
        np.testing.assert_allclose(
            emp_cov, model.grid_covariance(), atol=3e-5
        )

    def test_validation_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            CanonicalThicknessModel(
                grid_means=np.zeros(3),
                sensitivities=np.zeros((4, 2)),
                sigma_independent=0.01,
            )

    def test_validation_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            CanonicalThicknessModel(
                grid_means=np.zeros(3),
                sensitivities=np.zeros((3, 2)),
                sigma_independent=-0.01,
            )


class TestExplainedVariance:
    def test_sums_to_one(self, budget, correlation):
        ratios = explained_variance_ratio(budget, correlation)
        assert ratios.sum() == pytest.approx(1.0)
        assert np.all(np.diff(ratios) <= 1e-12)  # sorted descending

    def test_strong_correlation_concentrates_energy(self, budget):
        grid = GridSpec(nx=4, ny=4, width=4.0, height=4.0)
        strong = SpatialCorrelationModel(grid=grid, rho_dist=2.0)
        weak = SpatialCorrelationModel(grid=grid, rho_dist=0.05)
        assert (
            explained_variance_ratio(budget, strong)[0]
            > explained_variance_ratio(budget, weak)[0]
        )

    def test_zero_spatial_returns_zeros(self):
        grid = GridSpec(nx=2, ny=2, width=2.0, height=2.0)
        corr = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
        budget = VariationBudget(
            global_fraction=0.5,
            spatial_fraction=0.0,
            independent_fraction=0.5,
        )
        np.testing.assert_allclose(
            explained_variance_ratio(budget, corr), 0.0
        )
