"""Unit tests for the quad-tree correlation model."""

import numpy as np
import pytest

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError
from repro.variation.quadtree import QuadTreeModel, build_quadtree_model


@pytest.fixture()
def grid():
    return GridSpec(nx=4, ny=4, width=4.0, height=4.0)


class TestQuadTreeModel:
    def test_region_counts(self):
        tree = QuadTreeModel.equal_split(0.015, levels=3)
        assert tree.n_regions == 1 + 4 + 16

    def test_total_variance_preserved(self):
        sigma = 0.015
        tree = QuadTreeModel.equal_split(sigma, levels=3)
        assert tree.total_variance == pytest.approx(sigma**2)

    def test_region_of_level0_is_single(self):
        tree = QuadTreeModel.equal_split(0.01, levels=2)
        assert tree.region_of(0, 0.1, 0.9) == 0
        assert tree.region_of(0, 0.99, 0.01) == 0

    def test_region_of_level1_quadrants(self):
        tree = QuadTreeModel.equal_split(0.01, levels=2)
        assert tree.region_of(1, 0.1, 0.1) == 0
        assert tree.region_of(1, 0.9, 0.1) == 1
        assert tree.region_of(1, 0.1, 0.9) == 2
        assert tree.region_of(1, 0.9, 0.9) == 3

    def test_region_of_rejects_bad_level(self):
        tree = QuadTreeModel.equal_split(0.01, levels=2)
        with pytest.raises(ConfigurationError):
            tree.region_of(2, 0.5, 0.5)

    def test_rejects_mismatched_variances(self):
        with pytest.raises(ConfigurationError):
            QuadTreeModel(levels=2, level_variances=(0.1,))

    def test_rejects_negative_variance(self):
        with pytest.raises(ConfigurationError):
            QuadTreeModel(levels=1, level_variances=(-0.1,))

    def test_sensitivities_shape(self, grid):
        tree = QuadTreeModel.equal_split(0.015, levels=2)
        sens = tree.sensitivities(grid)
        assert sens.shape == (16, 5)

    def test_covariance_diagonal_is_total_variance(self, grid):
        sigma = 0.015
        tree = QuadTreeModel.equal_split(sigma, levels=3)
        cov = tree.covariance(grid)
        np.testing.assert_allclose(np.diag(cov), sigma**2, rtol=1e-12)

    def test_covariance_decays_with_tree_distance(self, grid):
        tree = QuadTreeModel.equal_split(0.015, levels=3)
        cov = tree.covariance(grid)
        # Adjacent cells in the same quadrant share more levels than cells
        # in opposite corners.
        assert cov[0, 1] > cov[0, 15]

    def test_same_quadrant_cells_fully_share_upper_levels(self, grid):
        sigma = 0.02
        tree = QuadTreeModel.equal_split(sigma, levels=2)
        cov = tree.covariance(grid)
        # Cells 0 and 1 are both in the lower-left level-1 quadrant: they
        # share levels 0 and 1 entirely -> covariance = total variance.
        assert cov[0, 1] == pytest.approx(sigma**2)
        # Opposite corners share only level 0.
        assert cov[0, 15] == pytest.approx(sigma**2 / 2.0)


class TestBuildQuadtreeModel:
    def test_canonical_dimensions(self, grid, budget):
        model = build_quadtree_model(budget, grid, levels=2)
        assert model.n_grids == 16
        assert model.n_factors == 1 + 5  # global + tree regions

    def test_global_factor_first(self, grid, budget):
        model = build_quadtree_model(budget, grid, levels=2)
        np.testing.assert_allclose(
            model.sensitivities[:, 0], budget.sigma_global
        )

    def test_device_sigma_matches_budget(self, grid, budget):
        model = build_quadtree_model(budget, grid, levels=3)
        np.testing.assert_allclose(
            model.device_sigma(), budget.sigma_total, rtol=1e-10
        )

    def test_mean_offsets_applied(self, grid, budget):
        offsets = np.full(16, 0.01)
        model = build_quadtree_model(budget, grid, levels=2, mean_offsets=offsets)
        np.testing.assert_allclose(
            model.grid_means, budget.nominal_thickness + 0.01
        )

    def test_mean_offsets_shape_checked(self, grid, budget):
        with pytest.raises(ConfigurationError):
            build_quadtree_model(budget, grid, mean_offsets=np.zeros(3))
