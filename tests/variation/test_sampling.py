"""Unit tests for chip sampling (the MC substrate)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.variation.correlation import SpatialCorrelationModel
from repro.variation.pca import build_canonical_model
from repro.variation.sampling import ChipSampler, assign_devices_to_grid


@pytest.fixture()
def setup(small_floorplan, budget):
    grid = small_floorplan.make_grid(5)
    correlation = SpatialCorrelationModel(grid=grid, rho_dist=0.5)
    model = build_canonical_model(budget, correlation)
    sampler = ChipSampler(small_floorplan, grid, model)
    return small_floorplan, grid, model, sampler


class TestAssignDevicesToGrid:
    def test_counts_sum_to_block_devices(self, setup):
        floorplan, grid, _model, _sampler = setup
        assignments = assign_devices_to_grid(floorplan, grid)
        for block, assignment in zip(floorplan.blocks, assignments, strict=True):
            assert assignment.n_devices == block.n_devices
            assert np.all(assignment.device_counts > 0)

    def test_indices_within_grid(self, setup):
        floorplan, grid, _model, _sampler = setup
        for assignment in assign_devices_to_grid(floorplan, grid):
            assert np.all(assignment.grid_indices >= 0)
            assert np.all(assignment.grid_indices < grid.n_cells)

    def test_deterministic(self, setup):
        floorplan, grid, _model, _sampler = setup
        a = assign_devices_to_grid(floorplan, grid)
        b = assign_devices_to_grid(floorplan, grid)
        for x, y in zip(a, b, strict=True):
            np.testing.assert_array_equal(x.device_counts, y.device_counts)

    def test_fractions_sum_to_one(self, setup):
        floorplan, grid, _model, _sampler = setup
        for assignment in assign_devices_to_grid(floorplan, grid):
            assert assignment.fractions.sum() == pytest.approx(1.0)


class TestChipSampler:
    def test_factor_shape(self, setup, rng):
        _fp, _grid, model, sampler = setup
        z = sampler.sample_factors(10, rng)
        assert z.shape == (10, model.n_factors)

    def test_rejects_grid_model_mismatch(self, small_floorplan, budget):
        grid = small_floorplan.make_grid(5)
        other_grid = small_floorplan.make_grid(3)
        correlation = SpatialCorrelationModel(grid=other_grid, rho_dist=0.5)
        model = build_canonical_model(budget, correlation)
        with pytest.raises(ConfigurationError):
            ChipSampler(small_floorplan, grid, model)

    def test_device_thicknesses_count(self, setup, rng):
        fp, _grid, _model, sampler = setup
        z = sampler.sample_factors(1, rng)[0]
        for j, block in enumerate(fp.blocks):
            thickness = sampler.device_thicknesses(z, j, rng)
            assert thickness.shape == (block.n_devices,)

    def test_device_thicknesses_near_nominal(self, setup, budget, rng):
        _fp, _grid, _model, sampler = setup
        z = np.zeros(sampler.model.n_factors)
        thickness = sampler.device_thicknesses(z, 0, rng)
        # With z = 0, devices deviate only by the independent residual.
        assert thickness.mean() == pytest.approx(
            budget.nominal_thickness, abs=4 * budget.sigma_independent
        )
        assert thickness.std(ddof=1) == pytest.approx(
            budget.sigma_independent, rel=0.2
        )

    def test_global_factor_shifts_everything(self, setup, budget, rng):
        _fp, _grid, _model, sampler = setup
        z = np.zeros(sampler.model.n_factors)
        z[0] = 3.0
        shifted = sampler.device_thicknesses(z, 0, rng)
        assert shifted.mean() > budget.nominal_thickness + 2.0 * budget.sigma_global

    def test_chip_thicknesses_all_blocks(self, setup, rng):
        fp, _grid, _model, sampler = setup
        z = sampler.sample_factors(1, rng)[0]
        per_block = sampler.chip_thicknesses(z, rng)
        assert len(per_block) == fp.n_blocks

    def test_block_base_thickness_batch(self, setup, rng):
        fp, _grid, _model, sampler = setup
        z = sampler.sample_factors(5, rng)
        bases = sampler.block_base_thickness(z)
        assert len(bases) == fp.n_blocks
        for j, base in enumerate(bases):
            assert base.shape == (5, sampler.assignments[j].grid_indices.size)

    def test_sample_block_moments_statistics(self, setup, budget, rng):
        _fp, _grid, _model, sampler = setup
        means, variances = sampler.sample_block_moments(150, rng)
        assert means.shape == variances.shape == (150, sampler.floorplan.n_blocks)
        # Across chips the BLOD mean is centred at nominal with sigma
        # dominated by the global component.
        assert means.mean() == pytest.approx(budget.nominal_thickness, abs=0.01)
        assert means.std() == pytest.approx(budget.sigma_global, rel=0.35)
        # The BLOD variance is the residual variance plus the within-block
        # spatial spread (blocks span several grid cells here).
        assert variances.mean() >= 0.9 * budget.sigma_independent**2
        assert variances.mean() <= (
            budget.sigma_independent**2 + budget.sigma_spatial**2
        )

    def test_device_thicknesses_rejects_batch_z(self, setup, rng):
        _fp, _grid, _model, sampler = setup
        with pytest.raises(ConfigurationError):
            sampler.device_thicknesses(np.zeros((2, sampler.model.n_factors)), 0, rng)

    def test_sample_factors_rejects_zero(self, setup, rng):
        _fp, _grid, _model, sampler = setup
        with pytest.raises(ConfigurationError):
            sampler.sample_factors(0, rng)
