"""Unit tests for wafer-level systematic patterns."""

import numpy as np
import pytest

from repro.chip.geometry import GridSpec
from repro.errors import ConfigurationError
from repro.variation.wafer import WaferPattern


class TestWaferPattern:
    def test_bowl_is_radially_symmetric(self):
        pattern = WaferPattern.bowl(depth=0.05, wafer_radius=150.0)
        r = 80.0
        a = pattern.offset_at(np.array(r), np.array(0.0))
        b = pattern.offset_at(np.array(0.0), np.array(r))
        c = pattern.offset_at(
            np.array(r / np.sqrt(2.0)), np.array(r / np.sqrt(2.0))
        )
        assert a == pytest.approx(b)
        assert a == pytest.approx(c)

    def test_bowl_depth_at_edge(self):
        pattern = WaferPattern.bowl(depth=0.05, wafer_radius=150.0)
        assert pattern.offset_at(np.array(150.0), np.array(0.0)) == pytest.approx(
            0.05
        )
        assert pattern.offset_at(np.array(0.0), np.array(0.0)) == pytest.approx(0.0)

    def test_slanted_linear(self):
        pattern = WaferPattern.slanted(slope_x=1e-3, slope_y=2e-3)
        assert pattern.offset_at(np.array(10.0), np.array(5.0)) == pytest.approx(
            1e-3 * 10.0 + 2e-3 * 5.0
        )

    def test_grid_offsets_shape(self):
        pattern = WaferPattern.bowl(depth=0.05)
        grid = GridSpec(nx=3, ny=3, width=3.0, height=3.0)
        offsets = pattern.grid_offsets(grid, chip_x=10.0, chip_y=20.0)
        assert offsets.shape == (9,)

    def test_grid_offsets_vary_across_chip_for_slant(self):
        pattern = WaferPattern.slanted(slope_x=1e-2)
        grid = GridSpec(nx=4, ny=1, width=8.0, height=2.0)
        offsets = pattern.grid_offsets(grid, chip_x=0.0, chip_y=0.0)
        assert np.all(np.diff(offsets) > 0.0)

    def test_grid_offsets_reject_off_wafer_chip(self):
        pattern = WaferPattern.bowl(depth=0.05, wafer_radius=50.0)
        grid = GridSpec(nx=2, ny=2, width=20.0, height=20.0)
        with pytest.raises(ConfigurationError):
            pattern.grid_offsets(grid, chip_x=45.0, chip_y=0.0)

    def test_rejects_bad_radius(self):
        with pytest.raises(ConfigurationError):
            WaferPattern(wafer_radius=0.0)

    def test_chip_at_center_of_bowl_nearly_flat(self):
        pattern = WaferPattern.bowl(depth=0.05, wafer_radius=150.0)
        grid = GridSpec(nx=4, ny=4, width=10.0, height=10.0)
        center = pattern.grid_offsets(grid, chip_x=-5.0, chip_y=-5.0)
        edge = pattern.grid_offsets(grid, chip_x=90.0, chip_y=0.0)
        assert np.ptp(center) < np.ptp(edge)
